//! Loopback integration: daemons on 127.0.0.1 must produce results
//! **bit-identical** to the in-process engine, a warm restart over the
//! same store must perform zero preprocessing builds, and the 2-daemon
//! sharded submit must merge back into exactly the single-process output.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

use psdacc_engine::json::{self, Json};
use psdacc_engine::{BatchSpec, Engine};
use psdacc_serve::{client, Server, ServerHandle};
use psdacc_store::PersistentCache;

/// Three scenario families x estimates, refinement, min-uniform, and a
/// small seeded simulation — every protocol job kind.
const SPEC: &str = "scenario fir-cascade stages=2 taps=15 cutoff=0.2\n\
                    scenario freq-filter\n\
                    scenario dwt-pipeline levels=1\n\
                    batch npsd=128 bits=8..11 methods=psd,flat\n\
                    refine npsd=128 budget=1e-6 start=14 min=4\n\
                    min-uniform npsd=128 budget=1e-6 min=2 max=24\n\
                    budget npsd=128 bits=9\n\
                    simulate npsd=128 bits=10 samples=4096 nfft=64 seed=11 trials=1\n";

/// Distinct `(scenario, npsd)` keys in [`SPEC`].
const SPEC_KEYS: usize = 3;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psdacc-serve-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_memory_daemon(threads: usize) -> ServerHandle {
    Server::bind("127.0.0.1:0", Engine::new(threads)).unwrap().spawn().unwrap()
}

fn spawn_store_daemon(dir: &PathBuf, threads: usize) -> ServerHandle {
    let cache = Arc::new(PersistentCache::open(dir).unwrap());
    Server::bind("127.0.0.1:0", Engine::with_shared_cache(threads, cache)).unwrap().spawn().unwrap()
}

/// A result line minus its run-dependent fields (timings, cache hit flag):
/// everything that remains must be bit-identical across processes.
fn stable_fields(line: &str) -> Vec<(String, Json)> {
    match json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}")) {
        Json::Obj(fields) => fields
            .into_iter()
            .filter(|(k, _)| {
                !matches!(k.as_str(), "tau_pp_seconds" | "tau_eval_seconds" | "cache_hit")
            })
            .collect(),
        other => panic!("result line is not an object: {other:?}"),
    }
}

fn stat(line: &str, field: &str) -> u64 {
    json::parse(line).unwrap().get(field).and_then(Json::as_u64).unwrap()
}

/// The acceptance shape: a 2-daemon sharded `submit` produces output
/// bit-identical to a single-process engine run of the same spec.
#[test]
fn two_daemon_shard_matches_single_process_engine_bit_for_bit() {
    let spec = BatchSpec::parse(SPEC).unwrap();
    let expected: Vec<String> =
        Engine::new(4).run(spec.jobs()).results.iter().map(|r| r.to_json_line()).collect();

    let a = spawn_memory_daemon(2);
    let b = spawn_memory_daemon(2);
    let workers = vec![a.addr().to_string(), b.addr().to_string()];
    let mut streamed: Vec<String> = Vec::new();
    let outcome = client::submit_streaming(&workers, &spec.jobs(), |line| {
        streamed.push(line.to_string());
    })
    .unwrap();

    assert_eq!(outcome.lines.len(), expected.len());
    assert_eq!(outcome.failed, 0);
    assert_eq!(outcome.summaries.len(), 2, "one summary per worker");
    assert_eq!(streamed, outcome.lines, "streaming callback saw the merged order");
    for (got, want) in outcome.lines.iter().zip(&expected) {
        assert_eq!(stable_fields(got), stable_fields(want), "\n got: {got}\nwant: {want}");
    }
    // Shard really happened: both daemons served jobs.
    for worker in &workers {
        let stats = client::request_control(worker, "stats").unwrap();
        assert!(stat(&stats, "jobs_served") > 0, "{stats}");
    }
    a.shutdown();
    b.shutdown();
}

/// The acceptance criterion for persistence: cold daemon builds and
/// persists; a fresh daemon on the same store serves the same batch with
/// **zero** preprocessing builds, bit-identically.
#[test]
fn warm_daemon_restart_serves_with_zero_builds() {
    let dir = tmp_dir("warm");
    let spec = BatchSpec::parse(SPEC).unwrap();

    let cold = spawn_store_daemon(&dir, 3);
    let cold_addr = cold.addr().to_string();
    let cold_outcome = client::submit(std::slice::from_ref(&cold_addr), &spec.jobs()).unwrap();
    assert_eq!(cold_outcome.failed, 0);
    let stats = client::request_control(&cold_addr, "stats").unwrap();
    assert_eq!(stat(&stats, "cache_builds") as usize, SPEC_KEYS, "{stats}");
    assert_eq!(stat(&stats, "disk_writes") as usize, SPEC_KEYS, "{stats}");
    assert_eq!(stat(&stats, "disk_hits"), 0, "{stats}");
    cold.shutdown();

    // "Restart": a brand-new daemon process state over the same directory.
    let warm = spawn_store_daemon(&dir, 3);
    let warm_addr = warm.addr().to_string();
    let warm_outcome = client::submit(std::slice::from_ref(&warm_addr), &spec.jobs()).unwrap();
    assert_eq!(warm_outcome.failed, 0);
    let stats = client::request_control(&warm_addr, "stats").unwrap();
    assert_eq!(stat(&stats, "cache_builds"), 0, "warm start must not preprocess: {stats}");
    assert_eq!(stat(&stats, "disk_hits") as usize, SPEC_KEYS, "{stats}");
    warm.shutdown();

    assert_eq!(cold_outcome.lines.len(), warm_outcome.lines.len());
    for (c, w) in cold_outcome.lines.iter().zip(&warm_outcome.lines) {
        assert_eq!(stable_fields(c), stable_fields(w), "\ncold: {c}\nwarm: {w}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The multirate acceptance shape: decimated-DWT scenario families flow
/// through the wire protocol, the persistent store, and 2-daemon sharding
/// with zero protocol changes — sharded output bit-identical to the
/// single-process engine, and a warm restart on the same store performs
/// zero preprocessing (kernel) builds.
#[test]
fn decimated_dwt_batch_shards_and_persists_bit_identically() {
    // Analytic estimates, a refinement, and a seeded Monte-Carlo run over
    // both decimated families (npsd divisible by 2^levels throughout).
    let spec_text = "scenario dwt-decimated levels=1..2\n\
                     scenario dwt-packet depth=1\n\
                     batch npsd=64 bits=8..10 methods=psd,agnostic\n\
                     min-uniform npsd=64 budget=1e-5 min=2 max=24\n\
                     simulate npsd=64 bits=8 samples=2048 nfft=32 seed=5 trials=1\n";
    let spec = BatchSpec::parse(spec_text).unwrap();
    let keys = 3; // dwt-decimated[1], dwt-decimated[2], dwt-packet[1]
    let expected: Vec<String> =
        Engine::new(4).run(spec.jobs()).results.iter().map(|r| r.to_json_line()).collect();

    let dir = tmp_dir("decimated");
    let a = spawn_store_daemon(&dir, 2);
    let b = spawn_store_daemon(&dir, 2);
    let workers = vec![a.addr().to_string(), b.addr().to_string()];
    let outcome = client::submit(&workers, &spec.jobs()).unwrap();
    assert_eq!(outcome.failed, 0);
    assert_eq!(outcome.lines.len(), expected.len());
    for (got, want) in outcome.lines.iter().zip(&expected) {
        assert_eq!(stable_fields(got), stable_fields(want), "\n got: {got}\nwant: {want}");
    }
    a.shutdown();
    b.shutdown();

    // Warm restart over the shared store: multirate kernels load from
    // disk, zero preprocessing builds, bit-identical results again.
    let warm = spawn_store_daemon(&dir, 2);
    let warm_addr = warm.addr().to_string();
    let warm_outcome = client::submit(std::slice::from_ref(&warm_addr), &spec.jobs()).unwrap();
    assert_eq!(warm_outcome.failed, 0);
    let stats = client::request_control(&warm_addr, "stats").unwrap();
    assert_eq!(stat(&stats, "cache_builds"), 0, "warm start must not preprocess: {stats}");
    assert_eq!(stat(&stats, "disk_hits") as usize, keys, "{stats}");
    // The richer stats surface the per-scenario counters.
    let v = json::parse(&stats).unwrap();
    let per = v.get("scenario_cache").unwrap().as_array().unwrap();
    assert_eq!(per.len(), keys, "{stats}");
    assert!(per
        .iter()
        .any(|e| e.get("scenario").and_then(Json::as_str) == Some("dwt-decimated[levels=2]")));
    warm.shutdown();
    for (got, want) in warm_outcome.lines.iter().zip(&expected) {
        assert_eq!(stable_fields(got), stable_fields(want), "\n got: {got}\nwant: {want}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Control requests answer immediately, malformed lines get error
/// responses without killing the connection, and job errors come back as
/// result records.
#[test]
fn protocol_robustness_over_a_raw_socket() {
    let daemon = spawn_memory_daemon(2);
    let stream = TcpStream::connect(daemon.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();

    // Garbage line -> error response, connection stays up.
    writeln!(&stream, "this is not json").unwrap();
    reader.read_line(&mut line).unwrap();
    let v = json::parse(line.trim_end()).unwrap();
    assert_eq!(v.get("kind").unwrap().as_str(), Some("error"));
    assert_eq!(v.get("line").unwrap().as_u64(), Some(1));

    // scenarios still answered on the same connection.
    line.clear();
    writeln!(&stream, "{{\"kind\":\"scenarios\"}}").unwrap();
    reader.read_line(&mut line).unwrap();
    let v = json::parse(line.trim_end()).unwrap();
    assert_eq!(
        v.get("count").unwrap().as_u64(),
        Some(psdacc_engine::ScenarioRegistry::new().families().len() as u64)
    );

    // A job against an invalid scenario parameter fails at parse time with
    // a described error...
    line.clear();
    writeln!(&stream, "{{\"kind\":\"evaluate\",\"scenario\":\"fir-bank index=9999\",\"bits\":12}}")
        .unwrap();
    reader.read_line(&mut line).unwrap();
    let v = json::parse(line.trim_end()).unwrap();
    assert_eq!(v.get("kind").unwrap().as_str(), Some("error"));

    // ...while a valid job queued before EOF comes back as a result plus a
    // summary after half-close.
    writeln!(
        &stream,
        "{{\"kind\":\"evaluate\",\"scenario\":\"freq-filter\",\"bits\":12,\"id\":5}}"
    )
    .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let rest: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
    assert_eq!(rest.len(), 2, "{rest:?}");
    let result = json::parse(&rest[0]).unwrap();
    assert_eq!(result.get("job").unwrap().as_u64(), Some(5));
    assert!(result.get("power").unwrap().as_f64().unwrap() > 0.0);
    let summary = json::parse(&rest[1]).unwrap();
    assert_eq!(summary.get("kind").unwrap().as_str(), Some("summary"));
    assert_eq!(summary.get("jobs").unwrap().as_u64(), Some(1));
    assert_eq!(summary.get("failed").unwrap().as_u64(), Some(0));
    daemon.shutdown();
}

/// `wait_ready` turns `daemon & submit` scripting into a non-race.
#[test]
fn wait_ready_sees_a_live_daemon_and_times_out_on_a_dead_one() {
    let daemon = spawn_memory_daemon(1);
    client::wait_ready(&daemon.addr().to_string(), std::time::Duration::from_secs(10)).unwrap();
    let addr = daemon.addr();
    daemon.shutdown();
    assert!(client::wait_ready(&addr.to_string(), std::time::Duration::from_millis(200)).is_err());
}

/// An unreachable worker is a prompt error naming the dead address — on
/// the direct submit path and on the all-workers readiness probe (which
/// must name *every* dead address, not serially time out on the first).
#[test]
fn unreachable_workers_fail_fast_with_their_addresses_named() {
    let live = spawn_memory_daemon(1);
    let live_addr = live.addr().to_string();
    // Port 1 on loopback: connection refused immediately.
    let dead_a = "127.0.0.1:1".to_string();
    let dead_b = "127.0.0.1:2".to_string();

    let spec = BatchSpec::parse("scenario freq-filter\nbatch npsd=64 bits=10\n").unwrap();
    let t0 = std::time::Instant::now();
    let err = client::submit(std::slice::from_ref(&dead_a), &spec.jobs()).unwrap_err();
    assert!(err.to_string().contains(&dead_a), "{err}");
    assert!(t0.elapsed() < std::time::Duration::from_secs(30), "no connect hang");

    let workers = vec![live_addr, dead_a.clone(), dead_b.clone()];
    let err = client::wait_all_ready(&workers, std::time::Duration::from_millis(300)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains(&dead_a) && msg.contains(&dead_b), "{msg}");
    assert!(msg.contains("2 of 3"), "{msg}");
    live.shutdown();
}

/// After a served batch the `stats` reply carries per-verb log-bucketed
/// latency histograms with non-zero counts for every verb the batch used.
#[test]
fn stats_reply_carries_latency_histograms() {
    let daemon = spawn_memory_daemon(2);
    let addr = daemon.addr().to_string();
    let spec = BatchSpec::parse(SPEC).unwrap();
    client::submit(std::slice::from_ref(&addr), &spec.jobs()).unwrap();
    let stats = client::request_control(&addr, "stats").unwrap();
    let v = json::parse(&stats).unwrap();
    let latency = v.get("latency").unwrap().as_array().unwrap();
    assert_eq!(latency.len(), 5, "{stats}");
    for verb in ["evaluate", "greedy", "min-uniform", "budget", "simulate"] {
        let entry = latency
            .iter()
            .find(|e| e.get("verb").and_then(Json::as_str) == Some(verb))
            .unwrap_or_else(|| panic!("verb {verb} missing: {stats}"));
        assert!(entry.get("count").unwrap().as_u64().unwrap() > 0, "verb {verb} unused: {stats}");
        let buckets = entry.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), psdacc_obs::NUM_BUCKETS);
        assert!(entry.get("p95_ns").unwrap().as_f64().is_some(), "{stats}");
        // Exact extremes ride along with the bucketed percentiles and
        // bracket each other for a used verb.
        let min = entry.get("min_ns").unwrap().as_u64().unwrap();
        let max = entry.get("max_ns").unwrap().as_u64().unwrap();
        assert!(min > 0 && min <= max, "verb {verb} extremes: {stats}");
        let total: u64 = buckets.iter().map(|b| b.as_u64().unwrap()).sum();
        assert_eq!(total, entry.get("count").unwrap().as_u64().unwrap(), "{stats}");
    }
    daemon.shutdown();
}

/// Connections beyond `--max-connections` get one explanatory error line
/// and a closed socket, while admitted connections keep working.
#[test]
fn connection_limit_refuses_with_an_error_line() {
    use psdacc_serve::ServerConfig;
    let config = ServerConfig { max_connections: Some(1), ..ServerConfig::default() };
    let daemon = Server::bind_with("127.0.0.1:0", Engine::new(1), config).unwrap().spawn().unwrap();

    // First connection occupies the only slot (held open, no half-close).
    // The single-threaded accept loop admits connections in connect order,
    // so this one is accepted (and stays active, blocked in read) before
    // any probe below is looked at.
    let held = TcpStream::connect(daemon.addr()).unwrap();
    // Probe with a read timeout: a refused probe gets the error line; in
    // the unlikely window where the probe lands before `held` is admitted,
    // the read times out and we retry on a fresh socket.
    let mut refused_line = None;
    for _ in 0..100 {
        let over = TcpStream::connect(daemon.addr()).unwrap();
        over.set_read_timeout(Some(std::time::Duration::from_millis(200))).unwrap();
        let mut reader = BufReader::new(over);
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {
                refused_line = Some(line);
                break;
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    let line = refused_line.expect("over-limit connection never refused");
    let v = json::parse(line.trim_end()).unwrap();
    assert_eq!(v.get("kind").unwrap().as_str(), Some("error"));
    assert!(v.get("error").unwrap().as_str().unwrap().contains("connection limit (1)"), "{line}");

    // The held connection still serves.
    let mut reader = BufReader::new(held.try_clone().unwrap());
    writeln!(&held, "{{\"kind\":\"hello\"}}").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert_eq!(json::parse(reply.trim_end()).unwrap().get("kind").unwrap().as_str(), Some("hello"));
    // Both fds (the socket and its reader clone) must drop for the daemon
    // to see EOF and release the slot.
    drop(reader);
    drop(held);

    // Slot freed: new connections are admitted again (stats answers).
    let mut ok = false;
    for _ in 0..100 {
        // A probe landing before the slot frees gets the refusal line
        // (kind `error`) back — keep polling until a real stats reply.
        if let Ok(stats) = client::request_control(&daemon.addr().to_string(), "stats") {
            let v = json::parse(&stats).unwrap();
            if v.get("kind").and_then(Json::as_str) == Some("stats") {
                assert_eq!(v.get("max_connections").unwrap().as_u64(), Some(1));
                assert!(v.get("rejected_connections").unwrap().as_u64().unwrap() >= 1);
                ok = true;
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(ok, "slot never freed after the held connection closed");
    daemon.shutdown();
}

/// Unit-streaming mode over a raw socket: jobs execute as they arrive,
/// results come back tagged (any order), control requests interleave, and
/// half-close yields a `mode:"units"` summary.
#[test]
fn evaluate_units_mode_streams_results_as_they_complete() {
    let daemon = spawn_memory_daemon(2);
    let stream = TcpStream::connect(daemon.addr()).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    writeln!(&stream, "{{\"kind\":\"evaluate_units\"}}").unwrap();
    writeln!(
        &stream,
        "{{\"kind\":\"evaluate\",\"scenario\":\"freq-filter\",\"npsd\":64,\"bits\":12,\"id\":7}}"
    )
    .unwrap();
    writeln!(
        &stream,
        "{{\"kind\":\"evaluate\",\"scenario\":\"freq-filter\",\"npsd\":64,\"bits\":10,\"id\":3}}"
    )
    .unwrap();
    // A control request interleaves mid-stream.
    writeln!(&stream, "{{\"kind\":\"hello\"}}").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
    assert_eq!(lines.len(), 4, "{lines:?}");
    let parsed: Vec<Json> = lines.iter().map(|l| json::parse(l).unwrap()).collect();
    let ids: Vec<u64> = parsed
        .iter()
        .filter(|v| v.get("power").is_some())
        .map(|v| v.get("job").unwrap().as_u64().unwrap())
        .collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![3, 7], "{lines:?}");
    assert!(parsed.iter().any(|v| v.get("kind").and_then(Json::as_str) == Some("hello")));
    let summary = parsed.last().unwrap();
    assert_eq!(summary.get("kind").unwrap().as_str(), Some("summary"));
    assert_eq!(summary.get("mode").unwrap().as_str(), Some("units"));
    assert_eq!(summary.get("jobs").unwrap().as_u64(), Some(2));
    assert_eq!(summary.get("failed").unwrap().as_u64(), Some(0));

    // The unit results are bit-identical to the engine's own evaluation.
    let spec = BatchSpec::parse("scenario freq-filter\nbatch npsd=64 bits=10,12\n").unwrap();
    let expected = Engine::new(1).run(spec.jobs());
    let by_id = |id: u64| parsed.iter().find(|v| v.get("job").and_then(Json::as_u64) == Some(id));
    assert_eq!(
        by_id(3).unwrap().get("power").unwrap().as_f64(),
        expected.results[0].power,
        "bits=10"
    );
    assert_eq!(
        by_id(7).unwrap().get("power").unwrap().as_f64(),
        expected.results[1].power,
        "bits=12"
    );
    daemon.shutdown();
}

/// Unit-streaming with a wire trace context: the daemon records a
/// `serve.unit` span per unit parented under the coordinator's span, with
/// parse/cache/preprocess/tau_eval/serialize children, all retrievable
/// via the `trace` control verb — and results stay bit-identical to an
/// untraced run.
#[test]
fn evaluate_units_trace_context_yields_parented_daemon_spans() {
    use psdacc_serve::TraceContext;

    let daemon = spawn_memory_daemon(2);
    let run = |trace: Option<&TraceContext>| -> Vec<String> {
        let stream = TcpStream::connect(daemon.addr()).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        writeln!(&stream, "{}", psdacc_serve::evaluate_units_line(trace)).unwrap();
        for (id, bits) in [(7u64, 12u64), (3, 10)] {
            writeln!(
                &stream,
                "{{\"kind\":\"evaluate\",\"scenario\":\"freq-filter\",\"npsd\":64,\
                 \"bits\":{bits},\"id\":{id}}}"
            )
            .unwrap();
        }
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        reader.lines().map(|l| l.unwrap()).collect()
    };

    let root = psdacc_obs::SpanId::from_hex("00c0ffee00000001").unwrap();
    let ctx = TraceContext { batch: "it-batch".to_string(), span: Some(root) };
    let traced = run(Some(&ctx));
    let untraced = run(None);

    // Observability is behavior-neutral: same stable fields, traced or not.
    let results = |lines: &[String]| -> Vec<Vec<(String, Json)>> {
        let mut rows: Vec<(u64, Vec<(String, Json)>)> = lines
            .iter()
            .filter(|l| l.contains("\"power\""))
            .map(|l| (stat(l, "job"), stable_fields(l)))
            .collect();
        rows.sort_by_key(|(id, _)| *id);
        rows.into_iter().map(|(_, f)| f).collect()
    };
    assert_eq!(results(&traced), results(&untraced));

    // Fetch the daemon-side trace for the batch.
    let stream = TcpStream::connect(daemon.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    writeln!(&stream, "{}", psdacc_serve::trace_request_line("it-batch")).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let events = psdacc_serve::parse_trace_reply(line.trim_end()).unwrap();
    assert!(!events.is_empty(), "{line}");

    // Every unit span parents directly under the coordinator's root span.
    let unit_spans: Vec<_> = events.iter().filter(|e| e.name == "serve.unit").collect();
    assert_eq!(unit_spans.len(), 2, "{line}");
    for span in &unit_spans {
        assert_eq!(span.parent, Some(root), "serve.unit must parent under the wire span");
        assert_eq!(span.batch, "it-batch");
        assert!(span.unit == Some(3) || span.unit == Some(7));
    }
    // Each unit carries the full stage breakdown as children of its span.
    for parent in &unit_spans {
        for stage in ["unit.parse", "unit.cache_lookup", "unit.tau_eval", "unit.serialize"] {
            assert!(
                events.iter().any(|e| e.name == stage && e.parent == Some(parent.span)),
                "missing {stage} under {:?}: {line}",
                parent.unit
            );
        }
    }
    // At least one unit missed the cold cache: its lookup span has a
    // reconstructed `unit.preprocess` child carrying the build cost.
    assert!(events.iter().any(|e| e.name == "unit.preprocess"), "{line}");
    // An unknown batch is a clean error, not a hang.
    let stream = TcpStream::connect(daemon.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    writeln!(&stream, "{}", psdacc_serve::trace_request_line("no-such-batch")).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(psdacc_serve::parse_trace_reply(line.trim_end()).is_err(), "{line}");
    daemon.shutdown();
}

/// The open-scenario-API acceptance shape at the serve layer: a graph
/// defined over the wire on **both** daemons of a shard evaluates through
/// `submit` bit-identically to a local single-process engine run, and the
/// definition is observable via `stats` / `scenarios` / `describe`.
#[test]
fn defined_graph_scenario_shards_bit_identically_to_local_run() {
    const GRAPH: &str = r#"{"nodes":[{"name":"x","block":"input"},
        {"name":"lp","block":"fir","taps":[0.4,0.3,0.2,0.1],"inputs":["x"]},
        {"name":"d2","block":"downsample","factor":2,"inputs":["lp"]},
        {"name":"u2","block":"upsample","factor":2,"inputs":["d2"]},
        {"name":"post","block":"fir","taps":[0.5,0.5],"inputs":["u2"]},
        {"name":"trim","block":"gain","gain":0.5,"inputs":["post"],"role":"exact"}],
        "outputs":["trim"]}"#;
    const DYN_SPEC: &str = "scenario my-codec\n\
                            scenario freq-filter\n\
                            batch npsd=64 bits=8..10 methods=psd,agnostic\n\
                            simulate npsd=64 bits=9 samples=2048 nfft=64 seed=5 trials=1\n";

    // Local reference: same registry mechanics, single process.
    let registry = psdacc_engine::ScenarioRegistry::new();
    let defined = registry.define_graph_json("my-codec", GRAPH).unwrap();
    let spec = BatchSpec::parse_with(DYN_SPEC, &registry).unwrap();
    let expected: Vec<String> =
        Engine::new(4).run(spec.jobs()).results.iter().map(|r| r.to_json_line()).collect();

    // Fleet: define over the wire on both daemons, then shard.
    let a = spawn_memory_daemon(2);
    let b = spawn_memory_daemon(2);
    let workers = vec![a.addr().to_string(), b.addr().to_string()];
    let definitions = vec![("my-codec".to_string(), defined.canonical_json().to_string())];
    client::define_scenarios(&workers, &definitions).unwrap();
    let outcome = client::submit(&workers, &spec.jobs()).unwrap();
    assert_eq!(outcome.failed, 0);
    assert_eq!(outcome.lines.len(), expected.len());
    for (got, want) in outcome.lines.iter().zip(&expected) {
        assert_eq!(stable_fields(got), stable_fields(want), "\n got: {got}\nwant: {want}");
    }
    // The dynamic scenario's rows carry its content-hash key.
    let dynamic_rows = outcome.lines.iter().filter(|l| l.contains(&defined.key())).count();
    assert_eq!(dynamic_rows, 7, "3 bits x 2 methods + 1 simulate on the defined graph");

    // Both daemons know about the definition.
    for worker in &workers {
        let stats = client::request_control(worker, "stats").unwrap();
        assert_eq!(stat(&stats, "dynamic_scenarios"), 1, "{stats}");
        assert_eq!(stat(&stats, "protocol"), psdacc_serve::PROTOCOL_REVISION as u64, "{stats}");
        let scenarios = client::request_control(worker, "scenarios").unwrap();
        assert_eq!(stat(&scenarios, "dynamic"), 1, "{scenarios}");
        assert!(scenarios.contains("my-codec"), "{scenarios}");
        let describe = client::request_control(worker, "describe").unwrap();
        let v = json::parse(&describe).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("describe"));
        // 9 builtin + 3 estim + 1 dynamic.
        assert_eq!(v.get("count").unwrap().as_u64(), Some(13), "{describe}");
    }
    // An undefined daemon rejects the named scenario with a clear error.
    let lonely = spawn_memory_daemon(1);
    let err = client::submit(&[lonely.addr().to_string()], &spec.jobs()).unwrap_err();
    assert!(err.to_string().contains("my-codec"), "{err}");
    lonely.shutdown();
    a.shutdown();
    b.shutdown();
}

/// Dynamic scenarios persist like builtins: a daemon restart over the same
/// store serves a re-defined identical graph with zero preprocessing
/// builds (the content hash is the disk address).
#[test]
fn defined_graph_scenario_warm_restarts_from_the_store() {
    const GRAPH: &str = r#"{"nodes":[{"name":"x","block":"input"},
        {"name":"f","block":"iir","b":[0.2],"a":[1.0,-0.6],"inputs":["x"]}],
        "outputs":["f"]}"#;
    let dir = tmp_dir("dynwarm");
    let registry = psdacc_engine::ScenarioRegistry::new();
    let defined = registry.define_graph_json("warm-codec", GRAPH).unwrap();
    let spec = BatchSpec::parse_with(
        "scenario warm-codec\nbatch npsd=64 bits=8..12 methods=psd\n",
        &registry,
    )
    .unwrap();
    let definitions = vec![("warm-codec".to_string(), defined.canonical_json().to_string())];

    let cold = spawn_store_daemon(&dir, 2);
    let cold_addr = vec![cold.addr().to_string()];
    client::define_scenarios(&cold_addr, &definitions).unwrap();
    let cold_outcome = client::submit(&cold_addr, &spec.jobs()).unwrap();
    assert_eq!(cold_outcome.failed, 0);
    let stats = client::request_control(&cold_addr[0], "stats").unwrap();
    assert_eq!(stat(&stats, "cache_builds"), 1, "{stats}");
    assert_eq!(stat(&stats, "disk_writes"), 1, "{stats}");
    cold.shutdown();

    let warm = spawn_store_daemon(&dir, 2);
    let warm_addr = vec![warm.addr().to_string()];
    client::define_scenarios(&warm_addr, &definitions).unwrap();
    let warm_outcome = client::submit(&warm_addr, &spec.jobs()).unwrap();
    assert_eq!(warm_outcome.failed, 0);
    let stats = client::request_control(&warm_addr[0], "stats").unwrap();
    assert_eq!(stat(&stats, "cache_builds"), 0, "re-defined identical graph: {stats}");
    assert_eq!(stat(&stats, "disk_hits"), 1, "{stats}");
    for (a, b) in cold_outcome.lines.iter().zip(&warm_outcome.lines) {
        assert_eq!(stable_fields(a), stable_fields(b));
    }
    warm.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The measured-signal acceptance shape (PR 10): estimated-PSD scenarios —
/// both the estim families (rebuilt from seeds on each daemon) and a
/// `GraphSpec` carrying inline recorded samples, defined over the wire on
/// **both** daemons — shard bit-identically to a local single-process run.
/// Daemons hold no trace state; determinism of the estimation pipeline is
/// the only thing keeping the fleet honest, which is exactly what this
/// test pins.
#[test]
fn measured_source_scenarios_shard_bit_identically_to_local_run() {
    // A short recorded trace inlined in the spec (the canonical wire
    // form — `trace` references are resolved client-side before this).
    let mut gen = psdacc_dsp::SignalGenerator::new(4242);
    let samples: Vec<String> = gen.ar1(512, 0.8, 0.02).iter().map(|s| format!("{s:e}")).collect();
    let graph = format!(
        r#"{{"nodes":[{{"name":"x","block":"input"}},
            {{"name":"m","block":"measured","samples":[{}],"nfft":64}},
            {{"name":"s","block":"add","inputs":["x","m"]}},
            {{"name":"lp","block":"fir","taps":[0.3,0.4,0.3],"inputs":["s"]}}],
            "outputs":["lp"]}}"#,
        samples.join(",")
    );
    const MEASURED_SPEC: &str = "scenario recorded-rig\n\
                                 scenario measured-welch samples=1024 nfft=128 seed=3\n\
                                 scenario sigma-delta order=2 osr=8 samples=4096 nfft=256\n\
                                 batch npsd=128 bits=8..11 methods=psd rounding=nearest\n\
                                 budget npsd=128 bits=9\n";

    // Local reference.
    let registry = psdacc_engine::ScenarioRegistry::new();
    let defined = registry.define_graph_json("recorded-rig", &graph).unwrap();
    let spec = BatchSpec::parse_with(MEASURED_SPEC, &registry).unwrap();
    let expected: Vec<String> =
        Engine::new(4).run(spec.jobs()).results.iter().map(|r| r.to_json_line()).collect();
    assert!(expected.len() >= 15, "4 bits x 3 scenarios + 3 budgets");

    // Fleet: define the recorded graph on both daemons, then shard.
    let a = spawn_memory_daemon(2);
    let b = spawn_memory_daemon(2);
    let workers = vec![a.addr().to_string(), b.addr().to_string()];
    let definitions = vec![("recorded-rig".to_string(), defined.canonical_json().to_string())];
    client::define_scenarios(&workers, &definitions).unwrap();
    let outcome = client::submit(&workers, &spec.jobs()).unwrap();
    assert_eq!(outcome.failed, 0);
    assert_eq!(outcome.lines.len(), expected.len());
    for (got, want) in outcome.lines.iter().zip(&expected) {
        assert_eq!(stable_fields(got), stable_fields(want), "\n got: {got}\nwant: {want}");
    }
    // The budget rows carry the measured role over the wire.
    let budget_lines: Vec<&String> =
        outcome.lines.iter().filter(|l| l.contains("\"kind\":\"budget\"")).collect();
    assert_eq!(budget_lines.len(), 3);
    assert!(
        budget_lines.iter().all(|l| l.contains("\"role\":\"measured\"")),
        "every scenario in this spec has a measured source"
    );
    // Both daemons advertise the estim families to clients.
    for worker in &workers {
        let describe = client::request_control(worker, "describe").unwrap();
        for family in ["measured-welch", "cross-spectrum", "sigma-delta"] {
            assert!(describe.contains(family), "{worker} missing {family}: {describe}");
        }
    }
    a.shutdown();
    b.shutdown();
}
