//! The TCP daemon: accept loop, per-connection protocol driver (batch and
//! unit-streaming modes), and the graceful-shutdown handle used by tests
//! and the CLI.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use psdacc_engine::job::{run_job_traced, UnitTrace};
use psdacc_engine::json::JsonWriter;
use psdacc_engine::{Engine, JobSpec, ScenarioRegistry};
use psdacc_obs::{Counter, Gauge, MetricsRegistry, OpenSpan, TraceStore, Tracer};
use psdacc_sfg::GraphSpec;

use crate::error::ServeError;
use crate::latency::LatencyRegistry;
use crate::protocol::{parse_request, read_capped_line, result_line, Request, TraceContext};

/// Revision of the wire protocol this daemon speaks (`hello` advertises
/// it; revision 2 added `hello` / `evaluate_units`, revision 3 added
/// `define_scenario` / `describe` and registry-resolved scenario fields,
/// revision 4 added `metrics` / `trace` and the `evaluate_units` trace
/// context, revision 5 added the `budget` job kind with its per-node
/// attribution rows on the result line).
pub const PROTOCOL_REVISION: usize = 5;

/// Default retention bound for per-batch daemon-side traces (older
/// batches evict FIFO); override with [`ServerConfig::trace_limit`].
pub const TRACE_BATCH_CAP: usize = 8;

/// Daemon-level service policy plus fault-injection knobs.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Accept limit: connections beyond this many concurrently-served ones
    /// are answered with one `{"kind":"error",...}` line and closed
    /// immediately — explicit backpressure instead of an unbounded thread
    /// pile-up. `None` = unlimited.
    pub max_connections: Option<usize>,
    /// Fault injection: artificial delay before every unit executed in
    /// unit-streaming mode. Models a slow/overloaded machine so schedulers
    /// and CI can prove work actually re-routes around stragglers.
    pub chaos_unit_delay: Duration,
    /// Fault injection: after this many units served (daemon lifetime
    /// total), abruptly shut both socket directions of the serving
    /// connection — a mid-batch crash, as seen by the peer.
    pub chaos_die_after_units: Option<usize>,
    /// How many batches' traces the daemon retains for coordinator fetch
    /// (`--trace-limit N`); `None` = [`TRACE_BATCH_CAP`]. Sizing this to
    /// the coordinator's batch concurrency prevents a busy fleet from
    /// evicting a trace before its merge.
    pub trace_limit: Option<usize>,
}

/// Shared daemon state: the engine (whose cache may be disk-persistent)
/// plus the metrics registry every service counter lives in.
#[derive(Debug)]
pub struct ServerState {
    engine: Engine,
    registry: ScenarioRegistry,
    config: ServerConfig,
    metrics: Arc<MetricsRegistry>,
    jobs_served: Arc<Counter>,
    units_served: Arc<Counter>,
    connections: Arc<Counter>,
    active_connections: Arc<Gauge>,
    rejected_connections: Arc<Counter>,
    latency: LatencyRegistry,
    traces: TraceStore,
    shutdown: AtomicBool,
}

impl ServerState {
    fn new(engine: Engine, config: ServerConfig) -> Self {
        let metrics = Arc::new(MetricsRegistry::new());
        let latency = LatencyRegistry::new(&metrics);
        let trace_cap = config.trace_limit.unwrap_or(TRACE_BATCH_CAP);
        ServerState {
            engine,
            registry: ScenarioRegistry::new(),
            config,
            jobs_served: metrics.counter("serve_jobs_total"),
            units_served: metrics.counter("serve_units_total"),
            connections: metrics.counter("serve_connections_total"),
            active_connections: metrics.gauge("serve_active_connections"),
            rejected_connections: metrics.counter("serve_rejected_connections_total"),
            latency,
            traces: TraceStore::new(trace_cap),
            metrics,
            shutdown: AtomicBool::new(false),
        }
    }

    /// The engine serving this daemon.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The daemon-wide scenario registry: definitions registered on one
    /// connection are visible to every other (clones share providers).
    pub fn registry(&self) -> &ScenarioRegistry {
        &self.registry
    }

    /// The daemon-wide metrics registry (service counters, per-verb
    /// latency, and — when built with the `obs` feature — hot-path stage
    /// timers).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The retained per-batch daemon-side traces.
    pub fn trace_store(&self) -> &TraceStore {
        &self.traces
    }

    /// Mirrors the engine/store cache counters into the metrics registry
    /// as gauges (they are sampled snapshots of another layer's cells,
    /// not counters the daemon owns), so one exposition covers every
    /// layer.
    fn sync_layer_metrics(&self) {
        let cache = self.engine.cache().stats();
        let m = &self.metrics;
        m.gauge("engine_cache_builds").set(cache.builds as i64);
        m.gauge("engine_cache_hits").set(cache.hits as i64);
        m.gauge("engine_cache_entries").set(cache.entries as i64);
        m.gauge("store_disk_hits").set(cache.disk_hits as i64);
        m.gauge("store_disk_writes").set(cache.disk_writes as i64);
        m.gauge("store_evictions").set(cache.evictions as i64);
    }

    /// Renders the `metrics` response line: the registry's canonical JSON
    /// object under `metrics`, plus the Prometheus text exposition
    /// escaped into `text` (one line on the wire, newline-separated once
    /// unescaped).
    pub fn metrics_line(&self) -> String {
        self.sync_layer_metrics();
        let mut w = JsonWriter::new();
        w.field_str("kind", "metrics");
        w.field_usize("protocol", PROTOCOL_REVISION);
        w.field_raw("metrics", &self.metrics.to_json_line());
        w.field_str("text", &self.metrics.to_prometheus());
        w.finish()
    }

    /// Renders the `trace` response line for one batch: every retained
    /// daemon-side event, as the JSONL objects inlined into an array. An
    /// unknown (or already-evicted) batch is an error line, so a
    /// coordinator fetching too late learns why the trace is incomplete.
    pub fn trace_line(&self, lineno: usize, batch: &str) -> String {
        match self.traces.get(batch) {
            Some(tracer) => {
                let events: Vec<String> =
                    tracer.snapshot().iter().map(|e| e.to_json_line()).collect();
                let mut w = JsonWriter::new();
                w.field_str("kind", "trace");
                w.field_str("batch", batch);
                w.field_raw("events", &format!("[{}]", events.join(",")));
                w.finish()
            }
            None => error_line(lineno, &format!("no trace retained for batch `{batch}`")),
        }
    }

    /// Registers a graph definition and renders the acknowledgement (or
    /// rejection) line — shared by both connection modes.
    fn define_scenario_line(&self, lineno: usize, name: &str, spec: GraphSpec) -> String {
        match self.registry.define_graph(name, spec) {
            Ok(defined) => {
                let mut w = JsonWriter::new();
                w.field_str("kind", "scenario_defined");
                w.field_str("name", name);
                w.field_str("scenario", &defined.key());
                w.field_usize("nodes", defined.spec().nodes.len());
                w.field_usize("dynamic", self.registry.dynamic_count());
                w.finish()
            }
            Err(e) => error_line(lineno, &e.to_string()),
        }
    }

    /// Renders the `describe` reply (or rejection) line.
    fn describe_line(&self, lineno: usize, family: Option<&str>) -> String {
        match self.registry.describe_json_line(family) {
            Ok(line) => line,
            Err(e) => error_line(lineno, &e.to_string()),
        }
    }

    /// Renders the `hello` response line: capacity advertisement for
    /// schedulers (worker count sizes the in-flight window).
    pub fn hello_line(&self) -> String {
        let mut w = JsonWriter::new();
        w.field_str("kind", "hello");
        w.field_usize("protocol", PROTOCOL_REVISION);
        w.field_usize("workers", self.engine.threads());
        w.finish()
    }

    /// Renders the `stats` response line: protocol revision and the count
    /// of dynamically registered scenarios, per-scenario cache hit/miss
    /// counts (sorted by scenario key; empty until the daemon has served a
    /// job), per-verb log-bucketed latency histograms, and trace-ring
    /// retention accounting (`trace_limit` / retained / dropped), so a
    /// coordinator can tell when a missing trace was evicted rather than
    /// never recorded.
    pub fn stats_line(&self) -> String {
        let cache = self.engine.cache().stats();
        let mut w = JsonWriter::new();
        w.field_str("kind", "stats");
        w.field_usize("protocol", PROTOCOL_REVISION);
        w.field_usize("threads", self.engine.threads());
        w.field_usize("dynamic_scenarios", self.registry.dynamic_count());
        w.field_u64("jobs_served", self.jobs_served.get());
        w.field_u64("units_served", self.units_served.get());
        w.field_u64("connections", self.connections.get());
        w.field_i64("active_connections", self.active_connections.get());
        if let Some(max) = self.config.max_connections {
            w.field_usize("max_connections", max);
            w.field_u64("rejected_connections", self.rejected_connections.get());
        }
        let traces = self.traces.stats();
        w.field_usize("trace_limit", traces.cap);
        w.field_usize("trace_batches", traces.batches);
        w.field_usize("trace_events_retained", traces.events_retained);
        w.field_u64("trace_batches_dropped", traces.batches_dropped);
        w.field_u64("trace_events_dropped", traces.events_dropped);
        w.field_usize("cache_builds", cache.builds);
        w.field_usize("cache_hits", cache.hits);
        w.field_usize("cache_entries", cache.entries);
        w.field_usize("disk_hits", cache.disk_hits);
        w.field_usize("disk_writes", cache.disk_writes);
        w.field_usize("evictions", cache.evictions);
        let per_scenario: Vec<String> = self
            .engine
            .cache()
            .scenario_stats()
            .iter()
            .map(|s| {
                let mut entry = JsonWriter::new();
                entry.field_str("scenario", &s.scenario);
                entry.field_usize("hits", s.hits);
                entry.field_usize("misses", s.misses);
                entry.finish()
            })
            .collect();
        w.field_raw("scenario_cache", &format!("[{}]", per_scenario.join(",")));
        w.field_raw("latency", &self.latency.to_json());
        w.finish()
    }
}

/// A bound-but-not-yet-serving daemon.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// Handle over a daemon running on a background thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7341`, port 0 for ephemeral) over an
    /// engine whose cache decides the persistence story, with default
    /// service policy.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the address cannot be bound.
    pub fn bind(addr: &str, engine: Engine) -> Result<Self, ServeError> {
        Self::bind_with(addr, engine, ServerConfig::default())
    }

    /// [`Server::bind`] with an explicit [`ServerConfig`] (connection
    /// limits, fault injection).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the address cannot be bound.
    pub fn bind_with(addr: &str, engine: Engine, config: ServerConfig) -> Result<Self, ServeError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| ServeError::Io(format!("bind {addr}: {e}")))?;
        Ok(Server { listener, state: Arc::new(ServerState::new(engine, config)) })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the socket has no local address.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener.local_addr().map_err(|e| ServeError::Io(e.to_string()))
    }

    /// Serves until the shutdown flag is raised (never, unless a
    /// [`ServerHandle`] exists). Connection handlers run on their own
    /// threads; each connection's jobs run as one engine batch (or stream
    /// unit-by-unit in `evaluate_units` mode). Connections beyond
    /// `max_connections` are refused with one error line.
    pub fn run(&self) {
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    // The accept loop is the only incrementer, so this
                    // load-then-add admission check cannot over-admit.
                    if let Some(max) = state.config.max_connections {
                        if state.active_connections.get() >= max as i64 {
                            state.rejected_connections.inc();
                            refuse_connection(stream, max);
                            continue;
                        }
                    }
                    state.active_connections.add(1);
                    std::thread::spawn(move || {
                        state.connections.inc();
                        let result = handle_connection(&state, &stream);
                        state.active_connections.add(-1);
                        if let Err(e) = result {
                            eprintln!("psdacc-serve: connection error: {e}");
                        }
                    });
                }
                Err(e) => eprintln!("psdacc-serve: accept error: {e}"),
            }
        }
    }

    /// Moves the daemon onto a background thread, returning the handle
    /// that can stop it.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the local address cannot be read.
    pub fn spawn(self) -> Result<ServerHandle, ServeError> {
        let addr = self.local_addr()?;
        let state = Arc::clone(&self.state);
        let accept_thread = std::thread::spawn(move || self.run());
        Ok(ServerHandle { addr, state, accept_thread })
    }
}

impl ServerHandle {
    /// Where the daemon listens.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Daemon state (stats, engine access).
    pub fn state(&self) -> &ServerState {
        &self.state
    }

    /// Raises the shutdown flag, wakes the accept loop, and joins it.
    /// In-flight connections finish on their own threads.
    pub fn shutdown(self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept_thread.join();
    }
}

/// Answers an over-limit connection with one error line and closes it —
/// the peer learns *why* instead of seeing an unexplained hang.
fn refuse_connection(mut stream: TcpStream, max: usize) {
    let mut w = JsonWriter::new();
    w.field_str("kind", "error");
    w.field_str("error", &format!("connection limit ({max}) reached, retry later"));
    let _ = writeln!(stream, "{}", w.finish());
    let _ = stream.shutdown(Shutdown::Both);
}

/// Drives one connection: control requests answered immediately, job
/// requests collected until the client half-closes, then executed as one
/// batch with results streamed back in completion order. A leading
/// `evaluate_units` request switches to unit-streaming mode instead.
fn handle_connection(state: &ServerState, stream: &TcpStream) -> Result<(), ServeError> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut jobs: Vec<JobSpec> = Vec::new();
    let mut ids: Vec<usize> = Vec::new();
    let mut lineno = 0usize;
    while let Some(line) = read_capped_line(&mut reader)? {
        lineno += 1;
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(line.trim_end(), jobs.len(), &state.registry) {
            Ok(Request::Job { id, spec }) => {
                ids.push(id);
                jobs.push(spec);
            }
            Ok(Request::Scenarios) => {
                writeln!(writer, "{}", state.registry.scenarios_json_line())?;
                writer.flush()?;
            }
            Ok(Request::Describe { family }) => {
                writeln!(writer, "{}", state.describe_line(lineno, family.as_deref()))?;
                writer.flush()?;
            }
            Ok(Request::DefineScenario { name, spec }) => {
                writeln!(writer, "{}", state.define_scenario_line(lineno, &name, spec))?;
                writer.flush()?;
            }
            Ok(Request::Stats) => {
                writeln!(writer, "{}", state.stats_line())?;
                writer.flush()?;
            }
            Ok(Request::Metrics) => {
                writeln!(writer, "{}", state.metrics_line())?;
                writer.flush()?;
            }
            Ok(Request::Trace { batch }) => {
                writeln!(writer, "{}", state.trace_line(lineno, &batch))?;
                writer.flush()?;
            }
            Ok(Request::Hello) => {
                writeln!(writer, "{}", state.hello_line())?;
                writer.flush()?;
            }
            Ok(Request::EvaluateUnits { trace }) => {
                if jobs.is_empty() {
                    writer.flush()?;
                    drop(writer);
                    return handle_unit_mode(state, &mut reader, stream, trace);
                }
                write_error_line(&mut writer, lineno, "evaluate_units must precede job requests")?;
            }
            Err(e) => write_error_line(&mut writer, lineno, &e)?,
        }
    }
    if jobs.is_empty() {
        return writer.flush().map_err(ServeError::from);
    }
    let njobs = jobs.len();
    let mut write_error: Option<std::io::Error> = None;
    let kinds: Vec<psdacc_engine::JobKind> = jobs.iter().map(|j| j.kind.clone()).collect();
    let report = state.engine.run_streaming(jobs, |result| {
        // Service time of this job: the evaluation stage plus the
        // preprocessing pass when this job actually paid for it.
        let mut seconds = result.tau_eval_seconds;
        if !result.cache_hit {
            seconds += result.tau_pp_seconds.unwrap_or(0.0);
        }
        state.latency.record(&kinds[result.job], Duration::from_secs_f64(seconds.max(0.0)));
        if write_error.is_some() {
            return;
        }
        // `result.job` is the batch index; the wire carries the request id.
        let line = result_line(ids[result.job], result);
        if let Err(e) = writeln!(writer, "{line}").and_then(|()| writer.flush()) {
            write_error = Some(e);
        }
    });
    state.jobs_served.add(njobs as u64);
    if let Some(e) = write_error {
        return Err(ServeError::Io(format!("client went away mid-batch: {e}")));
    }
    let mut w = JsonWriter::new();
    w.field_str("kind", "summary");
    w.field_usize("jobs", report.pool.jobs);
    w.field_usize("failed", report.failures().count());
    w.field_usize("steals", report.pool.steals);
    w.field_usize("cache_builds", report.cache.builds);
    w.field_usize("disk_hits", report.cache.disk_hits);
    w.field_f64("wall_seconds", report.wall_seconds);
    writeln!(writer, "{}", w.finish())?;
    writer.flush()?;
    Ok(())
}

/// Renders the one `{"kind":"error",...}` line shape both connection
/// modes speak.
fn error_line(lineno: usize, error: &str) -> String {
    let mut w = JsonWriter::new();
    w.field_str("kind", "error");
    w.field_usize("line", lineno);
    w.field_str("error", error);
    w.finish()
}

fn write_error_line<W: Write>(writer: &mut W, lineno: usize, error: &str) -> std::io::Result<()> {
    writeln!(writer, "{}", error_line(lineno, error))?;
    writer.flush()
}

/// One queued unit: request id, the work, and the daemon-side `serve.unit`
/// span opened when the request line was parsed (so the span covers
/// channel queue time as well as execution).
type UnitFeed = (usize, JobSpec, Option<OpenSpan>);

/// Everything a unit executor shares with the reader loop — bundled so
/// the executor signature stays readable.
struct UnitMode<'a> {
    state: &'a ServerState,
    writer: &'a Mutex<BufWriter<TcpStream>>,
    stream: &'a TcpStream,
    tracer: &'a Tracer,
    died: &'a AtomicBool,
    executed: &'a AtomicUsize,
    failed: &'a AtomicUsize,
}

/// Unit-streaming mode: jobs execute the moment they arrive, up to the
/// engine's worker count concurrently, and each result is written back as
/// soon as it completes (any order — results carry their request id).
///
/// Backpressure is structural: the executor feed channel is bounded, so a
/// peer that outruns the daemon blocks in the kernel's TCP window instead
/// of growing an unbounded queue. On client half-close the executors
/// drain, then one `{"kind":"summary","mode":"units",...}` line ends the
/// stream.
///
/// With a trace context, every unit records a `serve.unit` span parented
/// under the coordinator's root span, with `unit.parse` /
/// `unit.cache_lookup` / `unit.preprocess` / `unit.tau_eval` /
/// `unit.serialize` children — the per-unit timing breakdown the merged
/// fleet trace is built from. Tracing never alters results: the tracer
/// only ever *observes* timings around the identical execution path.
fn handle_unit_mode<R: BufRead>(
    state: &ServerState,
    reader: &mut R,
    stream: &TcpStream,
    trace_ctx: Option<TraceContext>,
) -> Result<(), ServeError> {
    let threads = state.engine.threads().max(1);
    let writer = Mutex::new(BufWriter::new(stream.try_clone()?));
    let tracer = match &trace_ctx {
        Some(ctx) => state.traces.create(&ctx.batch),
        None => Arc::new(Tracer::disabled()),
    };
    let root_span = trace_ctx.as_ref().and_then(|ctx| ctx.span);
    let (tx, rx) = mpsc::sync_channel::<UnitFeed>(threads * 2);
    let rx = Mutex::new(rx);
    let died = AtomicBool::new(false);
    let executed = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let ctx = UnitMode {
        state,
        writer: &writer,
        stream,
        tracer: &tracer,
        died: &died,
        executed: &executed,
        failed: &failed,
    };
    let mut auto_id = 0usize;
    let mut lineno = 0usize;
    let mut read_error: Option<std::io::Error> = None;
    std::thread::scope(|scope| -> Result<(), ServeError> {
        for _ in 0..threads {
            scope.spawn(|| unit_executor(&ctx, &rx));
        }
        let tx = tx; // moved into the scope so executors see EOF at drop
        loop {
            let line = match read_capped_line(reader) {
                Ok(Some(line)) => line,
                Ok(None) => break,
                // Read failures (I/O, or the MAX_LINE_BYTES protocol cap)
                // must surface like batch mode's, not masquerade as a
                // clean half-close; stop feeding and report below.
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
            };
            lineno += 1;
            if line.trim().is_empty() {
                continue;
            }
            let parse_start = tracer.now_ns();
            match parse_request(line.trim_end(), auto_id, &state.registry) {
                Ok(Request::Job { id, spec }) => {
                    auto_id += 1;
                    let unit_span = tracer.start("serve.unit", root_span, Some(id as u64));
                    if let Some(span) = &unit_span {
                        // The parse happened before the span could exist;
                        // record it as a measured child ending now.
                        tracer.span_at(
                            "unit.parse",
                            Some(span.id),
                            Some(id as u64),
                            parse_start,
                            tracer.now_ns().saturating_sub(parse_start),
                            Vec::new(),
                        );
                    }
                    if tx.send((id, spec, unit_span)).is_err() {
                        break;
                    }
                }
                Ok(Request::Stats) => write_locked(&writer, &state.stats_line())?,
                Ok(Request::Metrics) => write_locked(&writer, &state.metrics_line())?,
                Ok(Request::Trace { batch }) => {
                    write_locked(&writer, &state.trace_line(lineno, &batch))?
                }
                Ok(Request::Hello) => write_locked(&writer, &state.hello_line())?,
                Ok(Request::Scenarios) => {
                    write_locked(&writer, &state.registry.scenarios_json_line())?
                }
                Ok(Request::Describe { family }) => {
                    write_locked(&writer, &state.describe_line(lineno, family.as_deref()))?
                }
                Ok(Request::DefineScenario { name, spec }) => {
                    write_locked(&writer, &state.define_scenario_line(lineno, &name, spec))?
                }
                // Idempotent: the connection is already in unit mode.
                Ok(Request::EvaluateUnits { .. }) => {}
                Err(e) => write_locked(&writer, &error_line(lineno, &e))?,
            }
        }
        Ok(())
    })?;
    if died.load(Ordering::SeqCst) {
        // Chaos kill: the socket is already torn down; no summary.
        return Ok(());
    }
    if let Some(e) = read_error {
        // Tell the peer (best effort) and the daemon log why the stream
        // ended without a summary.
        let _ = write_locked(&writer, &error_line(lineno + 1, &e.to_string()));
        return Err(ServeError::Io(format!("unit stream read failed: {e}")));
    }
    let mut w = JsonWriter::new();
    w.field_str("kind", "summary");
    w.field_str("mode", "units");
    w.field_usize("jobs", executed.load(Ordering::Relaxed));
    w.field_usize("failed", failed.load(Ordering::Relaxed));
    write_locked(&writer, &w.finish())?;
    Ok(())
}

fn write_locked(writer: &Mutex<BufWriter<TcpStream>>, line: &str) -> Result<(), ServeError> {
    let mut w = writer.lock().expect("writer lock");
    writeln!(w, "{line}")?;
    w.flush()?;
    Ok(())
}

/// One unit-mode executor: pull a unit, (chaos-)execute, write the result,
/// repeat until the feed channel closes.
fn unit_executor(ctx: &UnitMode<'_>, rx: &Mutex<mpsc::Receiver<UnitFeed>>) {
    let state = ctx.state;
    loop {
        // Holding the lock across the blocking recv is deliberate: exactly
        // one idle executor waits in recv at a time, takes the unit,
        // releases, and executes while the next idle executor moves into
        // recv — so execution still overlaps across all executors.
        let msg = rx.lock().expect("unit feed lock").recv();
        let Ok((id, spec, unit_span)) = msg else { return };
        if ctx.died.load(Ordering::SeqCst) {
            continue; // drain the feed without executing after a chaos kill
        }
        if !state.config.chaos_unit_delay.is_zero() {
            std::thread::sleep(state.config.chaos_unit_delay);
        }
        let parent = unit_span.as_ref().map(|s| s.id);
        let unit_trace = UnitTrace { tracer: ctx.tracer, parent, unit: Some(id as u64) };
        let t0 = Instant::now();
        let result = run_job_traced(state.engine.cache().as_ref(), 0, &spec, Some(&unit_trace));
        state.latency.record(&spec.kind, t0.elapsed());
        if result.error.is_some() {
            ctx.failed.fetch_add(1, Ordering::Relaxed);
        }
        let serialize = ctx.tracer.start("unit.serialize", parent, Some(id as u64));
        let line = result_line(id, &result);
        let wrote = write_locked(ctx.writer, &line);
        ctx.tracer.end(serialize);
        ctx.tracer.end(unit_span);
        if wrote.is_err() {
            // Client went away; keep draining so the reader can unwind.
            ctx.died.store(true, Ordering::SeqCst);
            continue;
        }
        state.jobs_served.inc();
        state.units_served.inc();
        let served = state.units_served.get() as usize;
        ctx.executed.fetch_add(1, Ordering::Relaxed);
        if let Some(limit) = state.config.chaos_die_after_units {
            if served >= limit && !ctx.died.swap(true, Ordering::SeqCst) {
                // Simulated crash: both directions down, mid-stream.
                let _ = ctx.stream.shutdown(Shutdown::Both);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdacc_engine::json;

    const DEMO_GRAPH: &str = r#"{"nodes":[{"name":"x","block":"input"},{"name":"g","block":"gain","gain":0.3,"inputs":["x"]}],"outputs":["g"]}"#;

    #[test]
    fn scenarios_line_is_valid_json_covering_the_registry() {
        let state = ServerState::new(Engine::new(1), ServerConfig::default());
        let v = json::parse(&state.registry().scenarios_json_line()).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("scenarios"));
        let entries = v.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 12, "9 builtin + 3 estim");
        assert_eq!(v.get("dynamic").unwrap().as_u64(), Some(0));
        for name in ["fir-bank", "measured-welch", "cross-spectrum", "sigma-delta"] {
            assert!(entries
                .iter()
                .any(|e| e.get("name").and_then(json::Json::as_str) == Some(name)));
        }
        assert!(entries.iter().all(|e| {
            let p = e.get("provider").and_then(json::Json::as_str);
            p == Some("builtin") || p == Some("estim")
        }));
    }

    #[test]
    fn stats_line_reflects_engine_shape() {
        let state = ServerState::new(Engine::new(3), ServerConfig::default());
        state.jobs_served.add(17);
        state.connections.add(2);
        let v = json::parse(&state.stats_line()).unwrap();
        assert_eq!(v.get("protocol").unwrap().as_u64(), Some(PROTOCOL_REVISION as u64));
        assert_eq!(v.get("threads").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("dynamic_scenarios").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("jobs_served").unwrap().as_u64(), Some(17));
        assert_eq!(v.get("units_served").unwrap().as_u64(), Some(0));
        // Trace retention accounting: default cap, nothing retained or
        // dropped yet.
        assert_eq!(v.get("trace_limit").unwrap().as_u64(), Some(TRACE_BATCH_CAP as u64));
        assert_eq!(v.get("trace_batches").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("trace_events_retained").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("trace_batches_dropped").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("trace_events_dropped").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("cache_builds").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("disk_hits").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("evictions").unwrap().as_u64(), Some(0));
        assert!(v.get("scenario_cache").unwrap().as_array().unwrap().is_empty());
        // Latency histograms are always present, one entry per verb, with
        // derived percentiles.
        let latency = v.get("latency").unwrap().as_array().unwrap();
        assert_eq!(latency.len(), crate::latency::VERBS.len());
        assert!(latency.iter().all(|e| e.get("p95_ns").is_some()));
        // No limit configured: the cap fields stay absent.
        assert!(v.get("max_connections").is_none());
    }

    #[test]
    fn stats_line_reports_trace_retention_under_a_configured_limit() {
        let config = ServerConfig { trace_limit: Some(2), ..ServerConfig::default() };
        let state = ServerState::new(Engine::new(1), config);
        let store = state.trace_store();
        store.create("b1").event("e", psdacc_obs::Severity::Info, None, None, Vec::new());
        store.create("b2");
        store.create("b3"); // evicts b1 and its one event
        let v = json::parse(&state.stats_line()).unwrap();
        assert_eq!(v.get("trace_limit").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("trace_batches").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("trace_events_retained").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("trace_batches_dropped").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("trace_events_dropped").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn metrics_line_carries_json_registry_and_prometheus_text() {
        let state = ServerState::new(Engine::new(2), ServerConfig::default());
        state.jobs_served.add(4);
        state.latency.record(
            &psdacc_engine::JobKind::Estimate {
                method: psdacc_core::Method::PsdMethod,
                frac_bits: 8,
            },
            Duration::from_micros(50),
        );
        let v = json::parse(&state.metrics_line()).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("metrics"));
        let m = v.get("metrics").unwrap();
        assert_eq!(m.get("serve_jobs_total").unwrap().as_u64(), Some(4));
        // Engine/store counters are mirrored into the same exposition.
        assert_eq!(m.get("engine_cache_builds").unwrap().as_i64(), Some(0));
        assert_eq!(m.get("store_evictions").unwrap().as_i64(), Some(0));
        let hist = m.get("serve_latency_ns{verb=evaluate}").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
        // The Prometheus text rides along escaped; unescaped it is
        // line-oriented and label-bearing.
        let text = v.get("text").unwrap().as_str().unwrap();
        assert!(text.contains("serve_jobs_total 4\n"), "{text}");
        assert!(text.contains("serve_latency_ns_count{verb=\"evaluate\"} 1\n"), "{text}");
    }

    #[test]
    fn trace_line_returns_retained_batches_and_rejects_unknown() {
        let state = ServerState::new(Engine::new(1), ServerConfig::default());
        let tracer = state.traces.create("batch-1");
        let span = tracer.start("serve.unit", None, Some(0));
        tracer.end(span);
        let v = json::parse(&state.trace_line(1, "batch-1")).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("trace"));
        assert_eq!(v.get("batch").unwrap().as_str(), Some("batch-1"));
        let events = v.get("events").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("serve.unit"));
        let err = json::parse(&state.trace_line(2, "no-such-batch")).unwrap();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("error"));
    }

    #[test]
    fn define_scenario_registers_and_counts_in_stats() {
        let state = ServerState::new(Engine::new(1), ServerConfig::default());
        let spec = psdacc_engine::graph_spec_from_str(DEMO_GRAPH).unwrap();
        let ack = state.define_scenario_line(1, "my-codec", spec.clone());
        let v = json::parse(&ack).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("scenario_defined"));
        assert_eq!(v.get("nodes").unwrap().as_u64(), Some(2));
        assert!(v.get("scenario").unwrap().as_str().unwrap().starts_with("graph["));
        let stats = json::parse(&state.stats_line()).unwrap();
        assert_eq!(stats.get("dynamic_scenarios").unwrap().as_u64(), Some(1));
        // Registered scenarios appear in the scenarios listing as dynamic.
        let list = json::parse(&state.registry().scenarios_json_line()).unwrap();
        assert_eq!(list.get("dynamic").unwrap().as_u64(), Some(1));
        // Reserved names are rejected with an error line, not a panic.
        let rejected = state.define_scenario_line(2, "fir-bank", spec);
        let v = json::parse(&rejected).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("error"));
    }

    #[test]
    fn describe_line_reports_schemas_and_rejects_unknowns() {
        let state = ServerState::new(Engine::new(1), ServerConfig::default());
        let v = json::parse(&state.describe_line(1, Some("fir-cascade"))).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("describe"));
        let fam = &v.get("families").unwrap().as_array().unwrap()[0];
        assert_eq!(fam.get("params").unwrap().as_array().unwrap().len(), 3);
        let err = json::parse(&state.describe_line(2, Some("nope"))).unwrap();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("error"));
        let all = json::parse(&state.describe_line(3, None)).unwrap();
        assert_eq!(all.get("count").unwrap().as_u64(), Some(12), "9 builtin + 3 estim");
    }

    #[test]
    fn hello_line_advertises_capacity() {
        let state = ServerState::new(Engine::new(5), ServerConfig::default());
        let v = json::parse(&state.hello_line()).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("hello"));
        assert_eq!(v.get("workers").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("protocol").unwrap().as_u64(), Some(PROTOCOL_REVISION as u64));
    }

    #[test]
    fn stats_line_carries_per_scenario_counters_and_latency() {
        use psdacc_engine::{JobKind, JobSpec, Scenario};
        use psdacc_fixed::RoundingMode;
        // One worker keeps the hit/miss split deterministic (racing
        // workers may both see an uninitialized slot as a miss).
        let state = ServerState::new(Engine::new(1), ServerConfig::default());
        let scenario = Scenario::FirCascade { stages: 1, taps: 9, cutoff: 0.3 };
        let job = |bits| JobSpec {
            scenario: scenario.clone(),
            npsd: 32,
            rounding: RoundingMode::Truncate,
            kind: JobKind::Estimate { method: psdacc_core::Method::PsdMethod, frac_bits: bits },
        };
        state.engine.run(vec![job(8), job(10), job(12)]);
        // The engine ran directly (not through a connection), so feed the
        // histogram the way a connection would.
        state.latency.record(&job(8).kind, Duration::from_micros(120));
        let v = json::parse(&state.stats_line()).unwrap();
        let entries = v.get("scenario_cache").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].get("scenario").and_then(json::Json::as_str),
            Some(scenario.key().as_str())
        );
        let hits = entries[0].get("hits").unwrap().as_u64().unwrap();
        let misses = entries[0].get("misses").unwrap().as_u64().unwrap();
        assert_eq!(hits + misses, 3, "one lookup per job");
        assert_eq!(misses, 1, "single build, rest hits");
        let latency = v.get("latency").unwrap().as_array().unwrap();
        let evaluate = latency
            .iter()
            .find(|e| e.get("verb").and_then(json::Json::as_str) == Some("evaluate"))
            .unwrap();
        assert_eq!(evaluate.get("count").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn configured_limit_appears_in_stats() {
        let config = ServerConfig { max_connections: Some(7), ..ServerConfig::default() };
        let state = ServerState::new(Engine::new(1), config);
        let v = json::parse(&state.stats_line()).unwrap();
        assert_eq!(v.get("max_connections").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("rejected_connections").unwrap().as_u64(), Some(0));
    }
}
