//! The TCP daemon: accept loop, per-connection protocol driver, and the
//! graceful-shutdown handle used by tests and the CLI.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use psdacc_engine::json::JsonWriter;
use psdacc_engine::{Engine, JobSpec, REGISTRY};

use crate::error::ServeError;
use crate::protocol::{parse_request, read_capped_line, result_line, Request};

/// Shared daemon state: the engine (whose cache may be disk-persistent)
/// plus service counters.
#[derive(Debug)]
pub struct ServerState {
    engine: Engine,
    jobs_served: AtomicUsize,
    connections: AtomicUsize,
    shutdown: AtomicBool,
}

impl ServerState {
    /// The engine serving this daemon.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Renders the `stats` response line, including per-scenario cache
    /// hit/miss counts (sorted by scenario key; empty until the daemon has
    /// served a job).
    pub fn stats_line(&self) -> String {
        let cache = self.engine.cache().stats();
        let mut w = JsonWriter::new();
        w.field_str("kind", "stats");
        w.field_usize("threads", self.engine.threads());
        w.field_usize("jobs_served", self.jobs_served.load(Ordering::Relaxed));
        w.field_usize("connections", self.connections.load(Ordering::Relaxed));
        w.field_usize("cache_builds", cache.builds);
        w.field_usize("cache_hits", cache.hits);
        w.field_usize("cache_entries", cache.entries);
        w.field_usize("disk_hits", cache.disk_hits);
        w.field_usize("disk_writes", cache.disk_writes);
        let per_scenario: Vec<String> = self
            .engine
            .cache()
            .scenario_stats()
            .iter()
            .map(|s| {
                let mut entry = JsonWriter::new();
                entry.field_str("scenario", &s.scenario);
                entry.field_usize("hits", s.hits);
                entry.field_usize("misses", s.misses);
                entry.finish()
            })
            .collect();
        w.field_raw("scenario_cache", &format!("[{}]", per_scenario.join(",")));
        w.finish()
    }
}

/// A bound-but-not-yet-serving daemon.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// Handle over a daemon running on a background thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7341`, port 0 for ephemeral) over an
    /// engine whose cache decides the persistence story.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the address cannot be bound.
    pub fn bind(addr: &str, engine: Engine) -> Result<Self, ServeError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| ServeError::Io(format!("bind {addr}: {e}")))?;
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                engine,
                jobs_served: AtomicUsize::new(0),
                connections: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the socket has no local address.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener.local_addr().map_err(|e| ServeError::Io(e.to_string()))
    }

    /// Serves until the shutdown flag is raised (never, unless a
    /// [`ServerHandle`] exists). Connection handlers run on their own
    /// threads; each connection's jobs run as one engine batch.
    pub fn run(&self) {
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || {
                        state.connections.fetch_add(1, Ordering::Relaxed);
                        if let Err(e) = handle_connection(&state, stream) {
                            eprintln!("psdacc-serve: connection error: {e}");
                        }
                    });
                }
                Err(e) => eprintln!("psdacc-serve: accept error: {e}"),
            }
        }
    }

    /// Moves the daemon onto a background thread, returning the handle
    /// that can stop it.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the local address cannot be read.
    pub fn spawn(self) -> Result<ServerHandle, ServeError> {
        let addr = self.local_addr()?;
        let state = Arc::clone(&self.state);
        let accept_thread = std::thread::spawn(move || self.run());
        Ok(ServerHandle { addr, state, accept_thread })
    }
}

impl ServerHandle {
    /// Where the daemon listens.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Daemon state (stats, engine access).
    pub fn state(&self) -> &ServerState {
        &self.state
    }

    /// Raises the shutdown flag, wakes the accept loop, and joins it.
    /// In-flight connections finish on their own threads.
    pub fn shutdown(self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept_thread.join();
    }
}

/// Drives one connection: control requests answered immediately, job
/// requests collected until the client half-closes, then executed as one
/// batch with results streamed back in completion order.
fn handle_connection(state: &ServerState, stream: TcpStream) -> Result<(), ServeError> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut jobs: Vec<JobSpec> = Vec::new();
    let mut ids: Vec<usize> = Vec::new();
    let mut lineno = 0usize;
    while let Some(line) = read_capped_line(&mut reader)? {
        lineno += 1;
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(line.trim_end(), jobs.len()) {
            Ok(Request::Job { id, spec }) => {
                ids.push(id);
                jobs.push(spec);
            }
            Ok(Request::Scenarios) => {
                writeln!(writer, "{}", scenarios_line())?;
                writer.flush()?;
            }
            Ok(Request::Stats) => {
                writeln!(writer, "{}", state.stats_line())?;
                writer.flush()?;
            }
            Err(e) => {
                let mut w = JsonWriter::new();
                w.field_str("kind", "error");
                w.field_usize("line", lineno);
                w.field_str("error", &e);
                writeln!(writer, "{}", w.finish())?;
                writer.flush()?;
            }
        }
    }
    if jobs.is_empty() {
        return writer.flush().map_err(ServeError::from);
    }
    let njobs = jobs.len();
    let mut write_error: Option<std::io::Error> = None;
    let report = state.engine.run_streaming(jobs, |result| {
        if write_error.is_some() {
            return;
        }
        // `result.job` is the batch index; the wire carries the request id.
        let line = result_line(ids[result.job], result);
        if let Err(e) = writeln!(writer, "{line}").and_then(|()| writer.flush()) {
            write_error = Some(e);
        }
    });
    state.jobs_served.fetch_add(njobs, Ordering::Relaxed);
    if let Some(e) = write_error {
        return Err(ServeError::Io(format!("client went away mid-batch: {e}")));
    }
    let mut w = JsonWriter::new();
    w.field_str("kind", "summary");
    w.field_usize("jobs", report.pool.jobs);
    w.field_usize("failed", report.failures().count());
    w.field_usize("steals", report.pool.steals);
    w.field_usize("cache_builds", report.cache.builds);
    w.field_usize("disk_hits", report.cache.disk_hits);
    w.field_f64("wall_seconds", report.wall_seconds);
    writeln!(writer, "{}", w.finish())?;
    writer.flush()?;
    Ok(())
}

/// Renders the `scenarios` response line.
fn scenarios_line() -> String {
    let entries: Vec<String> = REGISTRY
        .iter()
        .map(|entry| {
            let mut w = JsonWriter::new();
            w.field_str("name", entry.name);
            w.field_str("params", entry.params);
            w.field_str("description", entry.description);
            w.finish()
        })
        .collect();
    let mut w = JsonWriter::new();
    w.field_str("kind", "scenarios");
    w.field_usize("count", REGISTRY.len());
    w.field_raw("entries", &format!("[{}]", entries.join(",")));
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdacc_engine::json;

    #[test]
    fn scenarios_line_is_valid_json_covering_the_registry() {
        let v = json::parse(&scenarios_line()).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("scenarios"));
        let entries = v.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), REGISTRY.len());
        assert!(entries
            .iter()
            .any(|e| e.get("name").and_then(json::Json::as_str) == Some("fir-bank")));
    }

    #[test]
    fn stats_line_reflects_engine_shape() {
        let state = ServerState {
            engine: Engine::new(3),
            jobs_served: AtomicUsize::new(17),
            connections: AtomicUsize::new(2),
            shutdown: AtomicBool::new(false),
        };
        let v = json::parse(&state.stats_line()).unwrap();
        assert_eq!(v.get("threads").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("jobs_served").unwrap().as_u64(), Some(17));
        assert_eq!(v.get("cache_builds").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("disk_hits").unwrap().as_u64(), Some(0));
        assert!(v.get("scenario_cache").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn stats_line_carries_per_scenario_counters() {
        use psdacc_engine::{JobKind, JobSpec, Scenario};
        use psdacc_fixed::RoundingMode;
        let state = ServerState {
            // One worker keeps the hit/miss split deterministic (racing
            // workers may both see an uninitialized slot as a miss).
            engine: Engine::new(1),
            jobs_served: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        };
        let scenario = Scenario::FirCascade { stages: 1, taps: 9, cutoff: 0.3 };
        let job = |bits| JobSpec {
            scenario: scenario.clone(),
            npsd: 32,
            rounding: RoundingMode::Truncate,
            kind: JobKind::Estimate { method: psdacc_core::Method::PsdMethod, frac_bits: bits },
        };
        state.engine.run(vec![job(8), job(10), job(12)]);
        let v = json::parse(&state.stats_line()).unwrap();
        let entries = v.get("scenario_cache").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].get("scenario").and_then(json::Json::as_str),
            Some(scenario.key().as_str())
        );
        let hits = entries[0].get("hits").unwrap().as_u64().unwrap();
        let misses = entries[0].get("misses").unwrap().as_u64().unwrap();
        assert_eq!(hits + misses, 3, "one lookup per job");
        assert_eq!(misses, 1, "single build, rest hits");
    }
}
