//! The newline-delimited JSON wire protocol.
//!
//! Every request and response is one JSON object per line. A client
//! connection writes requests, half-closes its write side, and reads
//! responses until EOF. Request kinds:
//!
//! ```text
//! {"kind":"evaluate","scenario":"fir-bank index=3","npsd":256,
//!  "method":"psd","bits":12,"rounding":"truncate","id":0}
//! {"kind":"greedy","scenario":"freq-filter","budget":1e-8,"start":16,"min":4}
//! {"kind":"min-uniform","scenario":"freq-filter","budget":1e-8,"min":2,"max":24}
//! {"kind":"budget","scenario":"freq-filter","bits":12}
//! {"kind":"simulate","scenario":"freq-filter","bits":12,"samples":20000,
//!  "nfft":256,"seed":"7","trials":2}
//! {"kind":"define_scenario","name":"my-codec","graph":{"nodes":[...],"outputs":[...]}}
//! {"kind":"scenarios"}
//! {"kind":"describe","family":"fir-cascade"}
//! {"kind":"stats"}
//! {"kind":"metrics"}
//! {"kind":"hello"}
//! {"kind":"evaluate_units","trace":{"batch":"fleet-1a2b","span":"00c0ffee00000001"}}
//! {"kind":"trace","batch":"fleet-1a2b"}
//! ```
//!
//! `scenario` is the engine's spec-line syntax (`name key=value ...` for a
//! registered family — builtin or `define_scenario`-registered — or
//! `graph={...}` with an inline `GraphSpec`). `id` tags the response
//! (`"job"` field) so a sharding client can merge streams back into
//! submission order; when omitted, the daemon numbers requests per
//! connection. `seed` may be a JSON number or a string (a string preserves
//! full `u64` range; JSON numbers are doubles).
//!
//! `define_scenario` validates a declarative graph and registers it on the
//! daemon under `name` (acknowledged with one
//! `{"kind":"scenario_defined","name":...,"scenario":"graph[<hash>]",...}`
//! line); subsequent job requests — on *any* connection — may then name
//! it in their `scenario` field. Identity is the content hash of the
//! graph's canonical JSON, so two daemons given the same definition agree
//! on every cache key and store address without coordination.
//!
//! Control kinds (`scenarios`, `describe`, `stats`, `hello`,
//! `define_scenario`) are answered immediately. Job kinds are queued and
//! executed as **one engine batch** when the client half-closes, so a
//! connection's jobs share the work-stealing pool and stream back in
//! completion order, followed by one `{"kind":"summary"}` line.
//!
//! `evaluate_units` (sent before any job request) switches the connection
//! into **unit-streaming mode** instead: each job request executes as soon
//! as it arrives, up to the daemon's worker count concurrently, with its
//! result written back the moment it completes. The `psdacc-sched`
//! coordinator drives this mode to keep a bounded in-flight window per
//! daemon and refill it on every completion.
//!
//! The optional `trace` object on `evaluate_units` (protocol revision 4)
//! carries the coordinator's trace context: `batch` names the fleet batch
//! and `span` is the 16-hex-digit coordinator root span. The daemon then
//! records per-unit spans parented under that root and retains them until
//! the coordinator fetches them with `{"kind":"trace","batch":...}` —
//! answered with one `{"kind":"trace","batch":...,"events":[...]}` line
//! whose `events` are [`psdacc_obs::TraceEvent`] objects. `metrics` (also
//! revision 4) returns the daemon's metrics registry as canonical JSON
//! plus the Prometheus text exposition escaped into a `text` field.
//!
//! `budget` (protocol revision 5) is a job kind like `evaluate`: one
//! PSD-method evaluation whose result line additionally carries the
//! per-node noise-budget attribution rows under `budget` (the
//! `psdacc-obs` budget-report schema) — the ledger folds back to the
//! reported `power` bit-exactly.

use psdacc_engine::graphspec::parse_graph_spec;
use psdacc_engine::json::{self, Json, JsonWriter};
use psdacc_engine::{JobKind, JobResult, JobSpec, ScenarioRegistry};
use psdacc_fixed::RoundingMode;
use psdacc_obs::{SpanId, TraceEvent};
use psdacc_sfg::GraphSpec;

use crate::error::ServeError;

/// Per-line size cap on both sides of the wire. Real protocol lines are
/// hundreds of bytes; a peer streaming gigabytes with no `\n` must hit an
/// error, not grow an unbounded buffer.
pub const MAX_LINE_BYTES: u64 = 1 << 20;

/// Reads one newline-terminated line, enforcing [`MAX_LINE_BYTES`].
/// Returns `Ok(None)` at EOF.
///
/// # Errors
///
/// I/O errors, plus `InvalidData` for an oversized line.
pub fn read_capped_line<R: std::io::BufRead>(reader: &mut R) -> std::io::Result<Option<String>> {
    use std::io::{BufRead as _, Read as _};
    let mut take = reader.by_ref().take(MAX_LINE_BYTES);
    let mut line = String::new();
    let n = take.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n as u64 == MAX_LINE_BYTES && !line.ends_with('\n') {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("line exceeds the {MAX_LINE_BYTES}-byte protocol limit"),
        ));
    }
    Ok(Some(line))
}

/// The coordinator-side trace context carried on an `evaluate_units`
/// line: which fleet batch the units belong to and which coordinator
/// span the daemon's per-unit spans should parent under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// Fleet batch id — the key the coordinator later fetches the
    /// daemon-side trace by.
    pub batch: String,
    /// Coordinator root span for the batch, if the coordinator traces.
    pub span: Option<SpanId>,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A unit of engine work tagged with the response id.
    Job {
        /// Echoed as the result's `job` field.
        id: usize,
        /// The work.
        spec: JobSpec,
    },
    /// List the scenario registry.
    Scenarios,
    /// Report per-family parameter schemas (optionally one family).
    Describe {
        /// Narrow to one family, when given.
        family: Option<String>,
    },
    /// Register a declarative graph scenario under a name.
    DefineScenario {
        /// Registration name (spec-line addressable afterwards).
        name: String,
        /// The shape-checked spec (full structural validation happens at
        /// registration).
        spec: GraphSpec,
    },
    /// Report engine/cache/store counters.
    Stats,
    /// Report the metrics registry (canonical JSON + Prometheus text).
    Metrics,
    /// Advertise daemon capacity (worker count, protocol revision).
    Hello,
    /// Switch the connection into unit-streaming mode: subsequent job
    /// requests execute as they arrive (up to the daemon's worker count
    /// concurrently) and results stream back the moment each completes —
    /// the mode the `psdacc-sched` coordinator drives. The optional
    /// trace context makes the daemon record per-unit spans for the
    /// named batch.
    EvaluateUnits {
        /// Coordinator trace context, when the fleet run traces.
        trace: Option<TraceContext>,
    },
    /// Fetch the retained daemon-side trace of one batch.
    Trace {
        /// The batch id given in the `evaluate_units` trace context.
        batch: String,
    },
}

/// Parses one request line; `default_id` tags job requests that carry no
/// explicit `id`. Scenario fields resolve against `registry`, so jobs may
/// name scenarios registered earlier via `define_scenario`.
///
/// # Errors
///
/// A human-readable message (sent back to the client verbatim).
pub fn parse_request(
    line: &str,
    default_id: usize,
    registry: &ScenarioRegistry,
) -> Result<Request, String> {
    let value = json::parse(line)?;
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| "request needs a string `kind` field".to_string())?;
    match kind {
        "scenarios" => Ok(Request::Scenarios),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "hello" => Ok(Request::Hello),
        "evaluate_units" => {
            let trace = match value.get("trace") {
                None => None,
                Some(t) => {
                    let batch = t
                        .get("batch")
                        .and_then(Json::as_str)
                        .ok_or_else(|| "`trace` needs a string `batch` field".to_string())?
                        .to_string();
                    let span = match t.get("span") {
                        None => None,
                        Some(s) => Some(
                            s.as_str()
                                .and_then(SpanId::from_hex)
                                .ok_or_else(|| "`trace.span` must be a hex span id".to_string())?,
                        ),
                    };
                    Some(TraceContext { batch, span })
                }
            };
            Ok(Request::EvaluateUnits { trace })
        }
        "trace" => {
            let batch = value
                .get("batch")
                .and_then(Json::as_str)
                .ok_or_else(|| "trace needs a string `batch` field".to_string())?
                .to_string();
            Ok(Request::Trace { batch })
        }
        "describe" => {
            let family = match value.get("family") {
                None => None,
                Some(v) => Some(
                    v.as_str().ok_or_else(|| "`family` must be a string".to_string())?.to_string(),
                ),
            };
            Ok(Request::Describe { family })
        }
        "define_scenario" => {
            let name = value
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| "define_scenario needs a string `name` field".to_string())?
                .to_string();
            let graph = value
                .get("graph")
                .ok_or_else(|| "define_scenario needs a `graph` object".to_string())?;
            let spec = parse_graph_spec(graph).map_err(|e| e.to_string())?;
            Ok(Request::DefineScenario { name, spec })
        }
        "evaluate" | "greedy" | "min-uniform" | "budget" | "simulate" => {
            let id = match value.get("id") {
                None => default_id,
                Some(v) => v
                    .as_u64()
                    .map(|v| v as usize)
                    .ok_or_else(|| "`id` must be a non-negative integer".to_string())?,
            };
            let spec = parse_job_spec(kind, &value, registry)?;
            Ok(Request::Job { id, spec })
        }
        other => Err(format!(
            "unknown kind `{other}` (known: budget, evaluate, greedy, min-uniform, simulate, \
             define_scenario, describe, evaluate_units, hello, metrics, scenarios, stats, trace)"
        )),
    }
}

fn parse_job_spec(
    kind: &str,
    value: &Json,
    registry: &ScenarioRegistry,
) -> Result<JobSpec, String> {
    let scenario_text = value
        .get("scenario")
        .and_then(Json::as_str)
        .ok_or_else(|| "job request needs a string `scenario` field".to_string())?;
    let scenario = registry.parse_spec_line(scenario_text).map_err(|e| e.to_string())?;
    // Name indirection is pinned by content: clients send the hash they
    // expect alongside a graph scenario's name, so a definition replaced
    // between registration and this job is a loud error instead of a
    // silently different system.
    if let Some(expected) = value.get("scenario_sha") {
        let expected =
            expected.as_str().ok_or_else(|| "`scenario_sha` must be a string".to_string())?;
        match &scenario {
            psdacc_engine::Scenario::Graph(g) if g.hash() == expected => {}
            psdacc_engine::Scenario::Graph(g) => {
                return Err(format!(
                    "scenario `{scenario_text}` resolves to graph[{}] on this daemon, but the \
                     request expects graph[{expected}] — was the definition replaced mid-batch?",
                    g.hash()
                ))
            }
            _ => {
                return Err(format!(
                    "`scenario_sha` given for `{scenario_text}`, which is not a graph scenario"
                ))
            }
        }
    }
    // The daemon faces untrusted peers, so the wire enforces the same
    // bounds the batch-spec parser does — nfft=0 would panic a pool
    // worker, and absurd sizes are resource exhaustion, not jobs.
    let npsd = opt_usize_bounded(value, "npsd", 256, 2..=1 << 20)?;
    let rounding = match value.get("rounding").map(|v| v.as_str()) {
        None | Some(Some("truncate")) => RoundingMode::Truncate,
        Some(Some("nearest")) => RoundingMode::RoundNearest,
        _ => return Err("`rounding` must be \"truncate\" or \"nearest\"".to_string()),
    };
    let kind = match kind {
        "evaluate" => {
            let method = match value.get("method").map(|v| v.as_str()) {
                None | Some(Some("psd")) => psdacc_core::Method::PsdMethod,
                Some(Some("agnostic")) => psdacc_core::Method::PsdAgnostic,
                Some(Some("flat")) => psdacc_core::Method::Flat,
                _ => return Err("`method` must be \"psd\", \"agnostic\", or \"flat\"".to_string()),
            };
            JobKind::Estimate { method, frac_bits: req_i32(value, "bits")? }
        }
        "greedy" => JobKind::GreedyRefine {
            budget: req_budget(value)?,
            start_bits: opt_i32(value, "start", 16)?,
            min_bits: opt_i32(value, "min", 2)?,
        },
        "min-uniform" => {
            let min_bits = opt_i32(value, "min", 2)?;
            let max_bits = opt_i32(value, "max", 32)?;
            if min_bits > max_bits {
                return Err("`min` must not exceed `max`".to_string());
            }
            JobKind::MinUniform { budget: req_budget(value)?, min_bits, max_bits }
        }
        "budget" => JobKind::Budget { frac_bits: req_i32(value, "bits")? },
        "simulate" => JobKind::Simulate {
            frac_bits: req_i32(value, "bits")?,
            samples: opt_usize_bounded(value, "samples", 20_000, 256..=100_000_000)?,
            nfft: opt_usize_bounded(value, "nfft", 256, 2..=1 << 20)?,
            seed: opt_seed(value)?,
            trials: opt_usize_bounded(value, "trials", 1, 1..=1024)?,
        },
        _ => unreachable!("caller matched job kinds"),
    };
    Ok(JobSpec { scenario, npsd, rounding, kind })
}

fn req_i32(value: &Json, key: &str) -> Result<i32, String> {
    value
        .get(key)
        .and_then(Json::as_i64)
        .and_then(|v| i32::try_from(v).ok())
        .ok_or_else(|| format!("`{key}` must be an integer"))
}

fn opt_i32(value: &Json, key: &str, default: i32) -> Result<i32, String> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_i64()
            .and_then(|v| i32::try_from(v).ok())
            .ok_or_else(|| format!("`{key}` must be an integer")),
    }
}

fn opt_usize_bounded(
    value: &Json,
    key: &str,
    default: usize,
    range: std::ops::RangeInclusive<usize>,
) -> Result<usize, String> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().map(|v| v as usize).filter(|v| range.contains(v)).ok_or_else(|| {
            format!("`{key}` must be an integer in {}..={}", range.start(), range.end())
        }),
    }
}

fn req_budget(value: &Json) -> Result<f64, String> {
    value
        .get("budget")
        .and_then(Json::as_f64)
        .filter(|b| b.is_finite() && *b > 0.0)
        .ok_or_else(|| "`budget` must be a positive number".to_string())
}

/// `seed` travels as a string to preserve the full `u64` range (JSON
/// numbers are doubles); plain numbers are accepted for hand-written
/// requests.
fn opt_seed(value: &Json) -> Result<u64, String> {
    match value.get("seed") {
        None => Ok(0xC0FFEE),
        Some(Json::Str(s)) => {
            s.parse::<u64>().map_err(|_| "`seed` string must be a u64".to_string())
        }
        Some(v) => v.as_u64().ok_or_else(|| "`seed` must be a non-negative integer".to_string()),
    }
}

/// Renders a [`JobSpec`] as the request line the daemon will parse back
/// into an identical spec — the client side of the shard protocol.
///
/// # Errors
///
/// [`ServeError::Protocol`] for the one spec the wire cannot carry
/// faithfully: `Estimate { method: Simulation }` (use
/// [`JobKind::Simulate`] instead — silently shipping a different
/// estimator would be a wrong-answer bug, not a convenience).
pub fn job_request_line(id: usize, spec: &JobSpec) -> Result<String, ServeError> {
    if matches!(spec.kind, JobKind::Estimate { method: psdacc_core::Method::Simulation, .. }) {
        return Err(ServeError::Protocol(
            "Estimate { method: Simulation } has no wire form; use JobKind::Simulate".to_string(),
        ));
    }
    let mut w = JsonWriter::new();
    w.field_usize("id", id);
    let kind = match &spec.kind {
        JobKind::Estimate { .. } => "evaluate",
        JobKind::GreedyRefine { .. } => "greedy",
        JobKind::MinUniform { .. } => "min-uniform",
        JobKind::Budget { .. } => "budget",
        JobKind::Simulate { .. } => "simulate",
    };
    w.field_str("kind", kind);
    w.field_str("scenario", &spec.scenario.to_spec_line());
    if let psdacc_engine::Scenario::Graph(g) = &spec.scenario {
        // Pin the content identity: the daemon rejects the job if its
        // registry resolves the name to a different graph (see
        // `parse_job_spec`). Redundant-but-harmless for the inline form.
        w.field_str("scenario_sha", g.hash());
    }
    w.field_usize("npsd", spec.npsd);
    w.field_str(
        "rounding",
        match spec.rounding {
            RoundingMode::Truncate => "truncate",
            RoundingMode::RoundNearest => "nearest",
        },
    );
    match &spec.kind {
        JobKind::Estimate { method, frac_bits } => {
            w.field_str(
                "method",
                match method {
                    psdacc_core::Method::PsdMethod => "psd",
                    psdacc_core::Method::PsdAgnostic => "agnostic",
                    psdacc_core::Method::Flat => "flat",
                    psdacc_core::Method::Simulation => unreachable!("rejected above"),
                },
            );
            w.field_i64("bits", *frac_bits as i64);
        }
        JobKind::GreedyRefine { budget, start_bits, min_bits } => {
            w.field_f64("budget", *budget);
            w.field_i64("start", *start_bits as i64);
            w.field_i64("min", *min_bits as i64);
        }
        JobKind::MinUniform { budget, min_bits, max_bits } => {
            w.field_f64("budget", *budget);
            w.field_i64("min", *min_bits as i64);
            w.field_i64("max", *max_bits as i64);
        }
        JobKind::Budget { frac_bits } => {
            w.field_i64("bits", *frac_bits as i64);
        }
        JobKind::Simulate { frac_bits, samples, nfft, seed, trials } => {
            w.field_i64("bits", *frac_bits as i64);
            w.field_usize("samples", *samples);
            w.field_usize("nfft", *nfft);
            w.field_str("seed", &seed.to_string());
            w.field_usize("trials", *trials);
        }
    }
    Ok(w.finish())
}

/// Renders a result line with the `job` field remapped to the request id.
pub fn result_line(id: usize, result: &JobResult) -> String {
    let mut tagged = result.clone();
    tagged.job = id;
    tagged.to_json_line()
}

/// Renders the `define_scenario` request line for a named graph
/// definition (`graph_json` must be a valid `GraphSpec` document —
/// [`psdacc_engine::canonical_json`] output round-trips exactly).
pub fn define_request_line(name: &str, graph_json: &str) -> String {
    let mut w = JsonWriter::new();
    w.field_str("kind", "define_scenario");
    w.field_str("name", name);
    w.field_raw("graph", graph_json);
    w.finish()
}

/// Parses a daemon's `scenario_defined` acknowledgement, returning the
/// content-addressed scenario key it registered.
///
/// # Errors
///
/// [`ServeError::Protocol`] for rejections or unexpected lines.
pub fn parse_define_ack(line: &str) -> Result<String, ServeError> {
    let value = json::parse(line)
        .map_err(|e| ServeError::Protocol(format!("bad define_scenario reply: {e}")))?;
    match value.get("kind").and_then(Json::as_str) {
        Some("scenario_defined") => value
            .get("scenario")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ServeError::Protocol("scenario_defined without a key".to_string())),
        Some("error") => Err(ServeError::Protocol(format!(
            "daemon rejected definition: {}",
            value.get("error").and_then(Json::as_str).unwrap_or("unspecified")
        ))),
        _ => Err(ServeError::Protocol(format!("unexpected define_scenario reply: {line}"))),
    }
}

/// Renders the `evaluate_units` request line, with the coordinator trace
/// context when the fleet run traces.
pub fn evaluate_units_line(trace: Option<&TraceContext>) -> String {
    let mut w = JsonWriter::new();
    w.field_str("kind", "evaluate_units");
    if let Some(ctx) = trace {
        let mut tw = JsonWriter::new();
        tw.field_str("batch", &ctx.batch);
        if let Some(span) = ctx.span {
            tw.field_str("span", &span.to_hex());
        }
        w.field_raw("trace", &tw.finish());
    }
    w.finish()
}

/// Renders the `trace` request line fetching one batch's daemon-side
/// trace.
pub fn trace_request_line(batch: &str) -> String {
    let mut w = JsonWriter::new();
    w.field_str("kind", "trace");
    w.field_str("batch", batch);
    w.finish()
}

/// Parses a daemon's `trace` reply into the carried events.
///
/// # Errors
///
/// [`ServeError::Protocol`] for rejections, malformed events, or
/// unexpected lines.
pub fn parse_trace_reply(line: &str) -> Result<Vec<TraceEvent>, ServeError> {
    let value =
        json::parse(line).map_err(|e| ServeError::Protocol(format!("bad trace reply: {e}")))?;
    match value.get("kind").and_then(Json::as_str) {
        Some("trace") => value
            .get("events")
            .and_then(Json::as_array)
            .ok_or_else(|| ServeError::Protocol("trace reply without events".to_string()))?
            .iter()
            .map(|e| {
                TraceEvent::from_json(e)
                    .map_err(|err| ServeError::Protocol(format!("bad trace event: {err}")))
            })
            .collect(),
        Some("error") => Err(ServeError::Protocol(format!(
            "daemon rejected trace fetch: {}",
            value.get("error").and_then(Json::as_str).unwrap_or("unspecified")
        ))),
        _ => Err(ServeError::Protocol(format!("unexpected trace reply: {line}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdacc_core::Method;
    use psdacc_engine::Scenario;

    fn reg() -> ScenarioRegistry {
        ScenarioRegistry::new()
    }

    fn parse_request_reg(line: &str, default_id: usize) -> Result<Request, String> {
        parse_request(line, default_id, &ScenarioRegistry::new())
    }

    fn specs() -> Vec<JobSpec> {
        let scenario = Scenario::FirCascade { stages: 2, taps: 15, cutoff: 0.2 };
        vec![
            JobSpec {
                scenario: scenario.clone(),
                npsd: 128,
                rounding: RoundingMode::Truncate,
                kind: JobKind::Estimate { method: Method::PsdAgnostic, frac_bits: -3 },
            },
            JobSpec {
                scenario: Scenario::FirBank { index: 9 },
                npsd: 256,
                rounding: RoundingMode::RoundNearest,
                kind: JobKind::GreedyRefine { budget: 1.25e-9, start_bits: 16, min_bits: 4 },
            },
            JobSpec {
                scenario: Scenario::FreqFilter,
                npsd: 64,
                rounding: RoundingMode::Truncate,
                kind: JobKind::MinUniform { budget: 3.0e-7, min_bits: 2, max_bits: 24 },
            },
            JobSpec {
                scenario: scenario.clone(),
                npsd: 128,
                rounding: RoundingMode::RoundNearest,
                kind: JobKind::Simulate {
                    frac_bits: 10,
                    samples: 50_000,
                    nfft: 128,
                    seed: u64::MAX - 7,
                    trials: 3,
                },
            },
            JobSpec {
                scenario,
                npsd: 64,
                rounding: RoundingMode::Truncate,
                kind: JobKind::Budget { frac_bits: 11 },
            },
        ]
    }

    #[test]
    fn unshippable_simulation_method_is_rejected_not_swapped() {
        let spec = JobSpec {
            scenario: Scenario::FreqFilter,
            npsd: 128,
            rounding: RoundingMode::Truncate,
            kind: JobKind::Estimate { method: Method::Simulation, frac_bits: 10 },
        };
        assert!(job_request_line(0, &spec).is_err());
    }

    #[test]
    fn every_job_kind_round_trips_exactly() {
        for (i, spec) in specs().into_iter().enumerate() {
            let line = job_request_line(40 + i, &spec).unwrap();
            match parse_request(&line, 0, &reg()).unwrap_or_else(|e| panic!("{line}: {e}")) {
                Request::Job { id, spec: back } => {
                    assert_eq!(id, 40 + i);
                    assert_eq!(back, spec, "{line}");
                }
                other => panic!("{other:?}"),
            }
        }
    }

    const DEMO_GRAPH: &str = r#"{"nodes":[{"name":"x","block":"input"},{"name":"g","block":"gain","gain":0.3,"inputs":["x"]}],"outputs":["g"]}"#;

    #[test]
    fn define_scenario_and_describe_parse() {
        let line = define_request_line("my-codec", DEMO_GRAPH);
        match parse_request_reg(&line, 0).unwrap() {
            Request::DefineScenario { name, spec } => {
                assert_eq!(name, "my-codec");
                assert_eq!(spec.nodes.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_request_reg(r#"{"kind":"describe"}"#, 0),
            Ok(Request::Describe { family: None })
        );
        assert_eq!(
            parse_request_reg(r#"{"kind":"describe","family":"fir-bank"}"#, 0),
            Ok(Request::Describe { family: Some("fir-bank".to_string()) })
        );
        // Malformed graphs are parse errors, not daemon panics.
        for bad in [
            r#"{"kind":"define_scenario","graph":{}}"#,
            r#"{"kind":"define_scenario","name":"x"}"#,
            r#"{"kind":"define_scenario","name":"x","graph":{"nodes":[{"name":"n","block":"warp"}],"outputs":[]}}"#,
        ] {
            assert!(parse_request_reg(bad, 0).is_err(), "{bad}");
        }
    }

    #[test]
    fn named_and_inline_graph_scenarios_round_trip_on_the_wire() {
        let registry = reg();
        let defined = registry.define_graph_json("my-codec", DEMO_GRAPH).unwrap();
        // Named: the job line carries the name; the daemon-side registry
        // resolves it back to the same content identity.
        let spec = JobSpec {
            scenario: Scenario::Graph(defined.clone()),
            npsd: 64,
            rounding: RoundingMode::Truncate,
            kind: JobKind::Estimate { method: Method::PsdMethod, frac_bits: 9 },
        };
        let line = job_request_line(3, &spec).unwrap();
        assert!(line.contains("\"scenario\":\"my-codec\""), "{line}");
        match parse_request(&line, 0, &registry).unwrap() {
            Request::Job { id, spec: back } => {
                assert_eq!(id, 3);
                assert_eq!(back, spec, "content identity survives the name indirection");
            }
            other => panic!("{other:?}"),
        }
        // A daemon missing the definition rejects with a clear error.
        let err = parse_request(&line, 0, &reg()).unwrap_err();
        assert!(err.contains("my-codec"), "{err}");
        // A daemon whose definition was *replaced* rejects too: the job
        // line pins the content hash, so name indirection can never
        // silently evaluate a different system.
        let replaced = reg();
        replaced.define_graph_json("my-codec", &DEMO_GRAPH.replace("0.3", "0.31")).unwrap();
        let err = parse_request(&line, 0, &replaced).unwrap_err();
        assert!(err.contains("replaced mid-batch"), "{err}");
        // Anonymous: self-contained inline JSON, no registry state needed.
        let anon = JobSpec {
            scenario: Scenario::Graph(
                psdacc_engine::GraphScenario::from_json(DEMO_GRAPH, None).unwrap(),
            ),
            ..spec.clone()
        };
        let line = job_request_line(4, &anon).unwrap();
        assert!(line.contains("graph={"), "{line}");
        match parse_request(&line, 0, &reg()).unwrap() {
            Request::Job { spec: back, .. } => assert_eq!(back, anon),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn define_ack_round_trip() {
        let mut w = JsonWriter::new();
        w.field_str("kind", "scenario_defined");
        w.field_str("name", "my-codec");
        w.field_str("scenario", "graph[abc]");
        let ack = w.finish();
        assert_eq!(parse_define_ack(&ack).unwrap(), "graph[abc]");
        assert!(parse_define_ack(r#"{"kind":"error","error":"bad graph"}"#).is_err());
        assert!(parse_define_ack("garbage").is_err());
    }

    #[test]
    fn control_kinds_parse() {
        assert_eq!(parse_request_reg(r#"{"kind":"scenarios"}"#, 0), Ok(Request::Scenarios));
        assert_eq!(parse_request_reg(r#"{"kind":"stats"}"#, 0), Ok(Request::Stats));
        assert_eq!(parse_request_reg(r#"{"kind":"metrics"}"#, 0), Ok(Request::Metrics));
        assert_eq!(parse_request_reg(r#"{"kind":"hello"}"#, 0), Ok(Request::Hello));
        assert_eq!(
            parse_request_reg(r#"{"kind":"evaluate_units"}"#, 0),
            Ok(Request::EvaluateUnits { trace: None })
        );
        assert_eq!(
            parse_request_reg(r#"{"kind":"trace","batch":"b7"}"#, 0),
            Ok(Request::Trace { batch: "b7".to_string() })
        );
        assert!(parse_request_reg(r#"{"kind":"trace"}"#, 0).is_err());
    }

    #[test]
    fn evaluate_units_trace_context_round_trips() {
        // Bare: no trace context on the wire.
        let line = evaluate_units_line(None);
        assert_eq!(line, r#"{"kind":"evaluate_units"}"#);
        assert_eq!(parse_request_reg(&line, 0), Ok(Request::EvaluateUnits { trace: None }));
        // Full context: batch and coordinator root span survive.
        let ctx = TraceContext {
            batch: "fleet-1a2b".to_string(),
            span: Some(SpanId(0x00c0_ffee_0000_0001)),
        };
        let line = evaluate_units_line(Some(&ctx));
        assert_eq!(
            parse_request_reg(&line, 0),
            Ok(Request::EvaluateUnits { trace: Some(ctx.clone()) })
        );
        // Batch-only context (coordinator not tracing spans itself).
        let ctx = TraceContext { batch: "b".to_string(), span: None };
        let line = evaluate_units_line(Some(&ctx));
        assert_eq!(parse_request_reg(&line, 0), Ok(Request::EvaluateUnits { trace: Some(ctx) }));
        // Malformed contexts are loud errors.
        for bad in [
            r#"{"kind":"evaluate_units","trace":{}}"#,
            r#"{"kind":"evaluate_units","trace":{"batch":"b","span":"zz"}}"#,
        ] {
            assert!(parse_request_reg(bad, 0).is_err(), "{bad}");
        }
    }

    #[test]
    fn trace_reply_round_trips() {
        let event = TraceEvent {
            ts_ns: 5,
            name: "serve.unit".to_string(),
            kind: psdacc_obs::EventKind::Span { dur_ns: 9 },
            span: SpanId(3),
            parent: Some(SpanId(1)),
            batch: "b".to_string(),
            unit: Some(0),
            daemon: None,
            severity: psdacc_obs::Severity::Info,
            fields: Vec::new(),
        };
        let reply =
            format!(r#"{{"kind":"trace","batch":"b","events":[{}]}}"#, event.to_json_line());
        assert_eq!(parse_trace_reply(&reply).unwrap(), vec![event]);
        assert!(parse_trace_reply(r#"{"kind":"error","error":"no such batch"}"#).is_err());
        assert!(parse_trace_reply("garbage").is_err());
        assert_eq!(trace_request_line("b"), r#"{"kind":"trace","batch":"b"}"#);
    }

    #[test]
    fn defaults_fill_in() {
        let r = parse_request_reg(r#"{"kind":"evaluate","scenario":"freq-filter","bits":12}"#, 5)
            .unwrap();
        match r {
            Request::Job { id, spec } => {
                assert_eq!(id, 5, "default id used");
                assert_eq!(spec.npsd, 256);
                assert_eq!(spec.rounding, RoundingMode::Truncate);
                assert_eq!(
                    spec.kind,
                    JobKind::Estimate { method: Method::PsdMethod, frac_bits: 12 }
                );
            }
            other => panic!("{other:?}"),
        }
        let r = parse_request_reg(r#"{"kind":"simulate","scenario":"freq-filter","bits":8}"#, 0)
            .unwrap();
        match r {
            Request::Job { spec, .. } => assert_eq!(
                spec.kind,
                JobKind::Simulate {
                    frac_bits: 8,
                    samples: 20_000,
                    nfft: 256,
                    seed: 0xC0FFEE,
                    trials: 1
                }
            ),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_described() {
        for (line, needle) in [
            ("not json", "bad literal"),
            (r#"{"no":"kind"}"#, "kind"),
            (r#"{"kind":"bogus"}"#, "unknown kind"),
            (r#"{"kind":"evaluate","bits":12}"#, "scenario"),
            (r#"{"kind":"evaluate","scenario":"freq-filter"}"#, "bits"),
            (r#"{"kind":"evaluate","scenario":"no-such","bits":12}"#, "unknown scenario"),
            (r#"{"kind":"budget","scenario":"freq-filter"}"#, "bits"),
            (r#"{"kind":"greedy","scenario":"freq-filter","budget":-1}"#, "budget"),
            (r#"{"kind":"greedy","scenario":"freq-filter"}"#, "budget"),
            (
                r#"{"kind":"min-uniform","scenario":"freq-filter","budget":1e-9,"min":9,"max":3}"#,
                "min",
            ),
            (r#"{"kind":"evaluate","scenario":"freq-filter","bits":12,"id":-1}"#, "id"),
            (r#"{"kind":"evaluate","scenario":"freq-filter","bits":12,"npsd":1}"#, "npsd"),
            (
                r#"{"kind":"evaluate","scenario":"freq-filter","bits":12,"rounding":"up"}"#,
                "rounding",
            ),
        ] {
            let err = parse_request(line, 0, &reg()).unwrap_err();
            assert!(err.contains(needle), "`{line}` -> `{err}` (wanted `{needle}`)");
        }
    }

    #[test]
    fn hostile_sizes_are_rejected_at_the_wire() {
        // nfft=0 would panic a pool worker deep in the Welch PSD; absurd
        // sample/npsd counts are resource exhaustion. All parse errors.
        for line in [
            r#"{"kind":"simulate","scenario":"freq-filter","bits":8,"nfft":0}"#,
            r#"{"kind":"simulate","scenario":"freq-filter","bits":8,"trials":0}"#,
            r#"{"kind":"simulate","scenario":"freq-filter","bits":8,"samples":10}"#,
            r#"{"kind":"simulate","scenario":"freq-filter","bits":8,"samples":999999999999}"#,
            r#"{"kind":"evaluate","scenario":"freq-filter","bits":8,"npsd":1000000000}"#,
        ] {
            assert!(parse_request(line, 0, &reg()).is_err(), "{line}");
        }
    }

    #[test]
    fn oversized_lines_are_errors_not_allocations() {
        let mut input = std::io::Cursor::new(vec![b'x'; 2 * 1024 * 1024]);
        let err = read_capped_line(&mut std::io::BufReader::new(&mut input)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // Normal lines and EOF behave like BufRead::lines.
        let mut ok = std::io::BufReader::new(std::io::Cursor::new(b"a\nb".to_vec()));
        assert_eq!(read_capped_line(&mut ok).unwrap().as_deref(), Some("a\n"));
        assert_eq!(read_capped_line(&mut ok).unwrap().as_deref(), Some("b"));
        assert_eq!(read_capped_line(&mut ok).unwrap(), None);
    }

    #[test]
    fn result_line_carries_the_request_id() {
        use psdacc_engine::EvaluatorCache;
        let cache = EvaluatorCache::new();
        let spec = &specs()[0];
        let result = psdacc_engine::job::run_job(&cache, 0, spec);
        let line = result_line(991, &result);
        let v = psdacc_engine::json::parse(&line).unwrap();
        assert_eq!(v.get("job").unwrap().as_u64(), Some(991));
    }
}
