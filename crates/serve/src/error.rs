//! Serve error type.

use psdacc_engine::EngineError;
use psdacc_store::StoreError;

/// Errors surfaced by the evaluation service (daemon and client sides).
#[derive(Debug)]
pub enum ServeError {
    /// Socket or file I/O failure.
    Io(String),
    /// A protocol line could not be parsed or violated the protocol.
    Protocol(String),
    /// Engine-level failure (spec parsing, scenario construction).
    Engine(EngineError),
    /// Persistent-store failure.
    Store(StoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(msg) => write!(f, "serve I/O error: {msg}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Engine(e) => write!(f, "{e}"),
            ServeError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}
