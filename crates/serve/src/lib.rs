//! # psdacc-serve
//!
//! The workspace's first cross-process scaling path: a std-only TCP
//! daemon exposing the batch-evaluation engine over a newline-delimited
//! JSON protocol, plus the sharding client that fans a batch spec across
//! several daemons and merges the streamed results back in order.
//!
//! The paper's `tau_pp`/`tau_eval` economics want a **service**, not a
//! one-shot CLI: precision decisions get re-queried continuously (dynamic
//! precision scaling), and every query after the first should cost
//! `tau_eval`. The daemon holds its engine — and, when started with
//! `--store`, a [`psdacc_store::PersistentCache`] — for its whole
//! lifetime, so amortization spans connections *and restarts*:
//!
//! ```text
//! psdacc-serve daemon --addr 127.0.0.1:7341 --store /var/cache/psdacc &
//! psdacc-serve daemon --addr 127.0.0.1:7342 --store /var/cache/psdacc &
//! psdacc-serve submit --workers 127.0.0.1:7341,127.0.0.1:7342 batch.spec
//! ```
//!
//! `submit` expands the spec locally, round-robins jobs across the
//! workers tagged with their submission index, and re-merges the streams,
//! producing result lines identical to a local `psdacc-engine run` of the
//! same spec (timing fields aside). For *dynamic* dispatch — per-daemon
//! in-flight windows, work stealing, failure re-dispatch — the
//! `psdacc-sched` coordinator drives the daemon's `evaluate_units` mode
//! instead. See [`protocol`] for the wire format, [`server`] for
//! connection semantics (including `ServerConfig` limits and chaos
//! fault-injection), [`client`] for the sharding merge, [`latency`] for
//! the per-verb histograms in `stats`.

pub mod client;
pub mod error;
pub mod latency;
pub mod protocol;
pub mod server;

pub use client::{
    connect, connect_with_timeout, define_scenarios, request_control, submit, submit_streaming,
    wait_all_ready, wait_ready, ScenarioDefinition, ShardOutcome, CONNECT_TIMEOUT,
};
pub use error::ServeError;
pub use protocol::{
    define_request_line, evaluate_units_line, job_request_line, parse_define_ack, parse_request,
    parse_trace_reply, result_line, trace_request_line, Request, TraceContext,
};
pub use server::{Server, ServerConfig, ServerHandle, ServerState, PROTOCOL_REVISION};
