//! Per-verb service-latency histograms for the daemon `stats` reply.
//!
//! Each verb's histogram is a [`psdacc_obs::Histogram`] registered in the
//! daemon's [`MetricsRegistry`] under `serve_latency_ns{verb=...}`, so the
//! `stats` reply and the `metrics` exposition render the *same* cells —
//! there is one source of truth for service latency. Buckets are
//! log-spaced in nanoseconds (see the `psdacc_obs::metrics` docs for the
//! bucket and quantile conventions); log bucketing keeps the histogram a
//! fixed, tiny array while still resolving the spread that matters here —
//! cache hits are microseconds, preprocessing misses are seconds, and a
//! fleet scheduler sizing in-flight windows wants to see both modes, not
//! their useless average.

use std::sync::Arc;
use std::time::Duration;

use psdacc_engine::json::JsonWriter;
use psdacc_engine::JobKind;
use psdacc_obs::{Histogram, MetricsRegistry};

/// The job verbs of the wire protocol, in stats-reply order.
pub const VERBS: [&str; 5] = ["evaluate", "greedy", "min-uniform", "budget", "simulate"];

/// Histograms for every job verb of the protocol.
#[derive(Debug)]
pub struct LatencyRegistry {
    per_verb: [Arc<Histogram>; VERBS.len()],
}

impl LatencyRegistry {
    /// Registers one histogram per verb in `metrics` (named
    /// `serve_latency_ns{verb=...}`); the returned registry holds the hot
    /// handles so recording never takes the registry lock.
    pub fn new(metrics: &MetricsRegistry) -> Self {
        LatencyRegistry {
            per_verb: std::array::from_fn(|i| {
                metrics.histogram(&format!("serve_latency_ns{{verb={}}}", VERBS[i]))
            }),
        }
    }

    /// Records the service time of one executed job.
    pub fn record(&self, kind: &JobKind, elapsed: Duration) {
        self.per_verb[verb_index(kind)].record(elapsed);
    }

    /// The histogram for one verb (by [`VERBS`] index).
    pub fn verb(&self, index: usize) -> &Histogram {
        &self.per_verb[index]
    }

    /// Renders the `latency` field value of the `stats` reply: one object
    /// per verb (all verbs always present, so clients can rely on the
    /// shape), each with `count`, `total_ns`, derived `p50_ns` / `p95_ns`
    /// / `p99_ns` (linear sub-bucket interpolation), and the full bucket
    /// array.
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = VERBS
            .iter()
            .zip(&self.per_verb)
            .map(|(verb, hist)| {
                let mut w = JsonWriter::new();
                w.field_str("verb", verb);
                hist.snapshot().write_fields(&mut w);
                w.finish()
            })
            .collect();
        format!("[{}]", entries.join(","))
    }
}

/// The protocol verb a job kind records under — shared by the daemon's
/// latency registry and the fleet coordinator's roundtrip histograms, so
/// both layers bucket by the same names.
pub fn verb_of(kind: &JobKind) -> &'static str {
    VERBS[verb_index(kind)]
}

/// Maps a job kind to its verb's [`VERBS`] index.
fn verb_index(kind: &JobKind) -> usize {
    match kind {
        JobKind::Estimate { .. } => 0,
        JobKind::GreedyRefine { .. } => 1,
        JobKind::MinUniform { .. } => 2,
        JobKind::Budget { .. } => 3,
        JobKind::Simulate { .. } => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdacc_engine::json::{self, Json};

    #[test]
    fn registry_renders_every_verb_with_percentiles() {
        let metrics = MetricsRegistry::new();
        let reg = LatencyRegistry::new(&metrics);
        reg.record(
            &JobKind::Estimate { method: psdacc_core::Method::PsdMethod, frac_bits: 12 },
            Duration::from_micros(40),
        );
        reg.record(
            &JobKind::Simulate { frac_bits: 8, samples: 1024, nfft: 64, seed: 1, trials: 1 },
            Duration::from_millis(12),
        );
        let v = json::parse(&reg.to_json()).unwrap();
        let entries = v.as_array().unwrap();
        assert_eq!(entries.len(), VERBS.len());
        let by_verb = |name: &str| {
            entries
                .iter()
                .find(|e| e.get("verb").and_then(Json::as_str) == Some(name))
                .unwrap_or_else(|| panic!("verb {name} missing"))
        };
        assert_eq!(by_verb("evaluate").get("count").unwrap().as_u64(), Some(1));
        assert_eq!(by_verb("simulate").get("count").unwrap().as_u64(), Some(1));
        assert_eq!(by_verb("greedy").get("count").unwrap().as_u64(), Some(0));
        let buckets = by_verb("evaluate").get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), psdacc_obs::NUM_BUCKETS);
        // 40 µs = 40000 ns -> bucket 15 ([32768, 65536)).
        assert_eq!(buckets[15].as_u64(), Some(1));
        assert_eq!(by_verb("evaluate").get("total_ns").unwrap().as_u64(), Some(40_000));
        // One observation: every derived percentile interpolates to the
        // midpoint of its bucket (sub-bucket resolution, not the 2x
        // bucket-upper-bound snap).
        for p in ["p50_ns", "p95_ns", "p99_ns"] {
            assert_eq!(by_verb("evaluate").get(p).unwrap().as_f64(), Some(49_152.0), "{p}");
        }
        // Empty verbs render zero percentiles, not nulls.
        assert_eq!(by_verb("greedy").get("p99_ns").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn stats_reply_and_metrics_exposition_share_cells() {
        let metrics = MetricsRegistry::new();
        let reg = LatencyRegistry::new(&metrics);
        reg.record(
            &JobKind::Estimate { method: psdacc_core::Method::PsdMethod, frac_bits: 12 },
            Duration::from_nanos(100),
        );
        assert_eq!(metrics.histogram("serve_latency_ns{verb=evaluate}").count(), 1);
        assert!(metrics.to_prometheus().contains("serve_latency_ns_count{verb=\"evaluate\"} 1\n"));
    }
}
