//! Per-verb service-latency histograms for the daemon `stats` reply.
//!
//! Buckets are log-spaced in microseconds: bucket `i` counts jobs whose
//! service time fell in `[2^i, 2^(i+1))` µs (bucket 0 additionally absorbs
//! sub-microsecond jobs, the last bucket absorbs everything from ~34 s
//! up). Log bucketing keeps the histogram a fixed, tiny array while still
//! resolving the spread that matters here — cache hits are microseconds,
//! preprocessing misses are seconds, and a fleet scheduler sizing in-flight
//! windows wants to see both modes, not their useless average.
//!
//! All counters are relaxed atomics: recording happens on connection and
//! pool threads, reading happens in `stats`, and neither side needs more
//! than eventual consistency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use psdacc_engine::json::JsonWriter;
use psdacc_engine::JobKind;

/// Number of log-spaced buckets (`2^25` µs ≈ 33.5 s top bucket).
pub const NUM_BUCKETS: usize = 26;

/// The job verbs of the wire protocol, in stats-reply order.
pub const VERBS: [&str; 4] = ["evaluate", "greedy", "min-uniform", "simulate"];

/// One verb's histogram.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (us.max(1).ilog2() as usize).min(NUM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// Histograms for every job verb of the protocol.
#[derive(Debug, Default)]
pub struct LatencyRegistry {
    per_verb: [Histogram; VERBS.len()],
}

impl LatencyRegistry {
    /// Records the service time of one executed job.
    pub fn record(&self, kind: &JobKind, elapsed: Duration) {
        self.per_verb[verb_index(kind)].record(elapsed);
    }

    /// The histogram for one verb (by [`VERBS`] index).
    pub fn verb(&self, index: usize) -> &Histogram {
        &self.per_verb[index]
    }

    /// Renders the `latency` field value of the `stats` reply: one object
    /// per verb (all verbs always present, so clients can rely on the
    /// shape), each with `count`, `total_us`, and the full bucket array.
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = VERBS
            .iter()
            .zip(&self.per_verb)
            .map(|(verb, hist)| {
                let mut w = JsonWriter::new();
                w.field_str("verb", verb);
                w.field_usize("count", hist.count.load(Ordering::Relaxed) as usize);
                w.field_usize("total_us", hist.total_us.load(Ordering::Relaxed) as usize);
                let buckets: Vec<String> =
                    hist.buckets.iter().map(|b| b.load(Ordering::Relaxed).to_string()).collect();
                w.field_raw("buckets", &format!("[{}]", buckets.join(",")));
                w.finish()
            })
            .collect();
        format!("[{}]", entries.join(","))
    }
}

/// Maps a job kind to its verb's [`VERBS`] index.
fn verb_index(kind: &JobKind) -> usize {
    match kind {
        JobKind::Estimate { .. } => 0,
        JobKind::GreedyRefine { .. } => 1,
        JobKind::MinUniform { .. } => 2,
        JobKind::Simulate { .. } => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdacc_engine::json::{self, Json};

    #[test]
    fn buckets_are_log_spaced() {
        let h = Histogram::default();
        h.record(Duration::from_micros(0)); // -> bucket 0
        h.record(Duration::from_micros(1)); // -> bucket 0
        h.record(Duration::from_micros(3)); // -> bucket 1
        h.record(Duration::from_micros(1000)); // [512, 1024) -> bucket 9
        h.record(Duration::from_secs(3600)); // overflow -> last bucket
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets[0].load(Ordering::Relaxed), 2);
        assert_eq!(h.buckets[1].load(Ordering::Relaxed), 1);
        assert_eq!(h.buckets[9].load(Ordering::Relaxed), 1);
        assert_eq!(h.buckets[NUM_BUCKETS - 1].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn registry_renders_every_verb() {
        let reg = LatencyRegistry::default();
        reg.record(
            &JobKind::Estimate { method: psdacc_core::Method::PsdMethod, frac_bits: 12 },
            Duration::from_micros(40),
        );
        reg.record(
            &JobKind::Simulate { frac_bits: 8, samples: 1024, nfft: 64, seed: 1, trials: 1 },
            Duration::from_millis(12),
        );
        let v = json::parse(&reg.to_json()).unwrap();
        let entries = v.as_array().unwrap();
        assert_eq!(entries.len(), VERBS.len());
        let by_verb = |name: &str| {
            entries
                .iter()
                .find(|e| e.get("verb").and_then(Json::as_str) == Some(name))
                .unwrap_or_else(|| panic!("verb {name} missing"))
        };
        assert_eq!(by_verb("evaluate").get("count").unwrap().as_u64(), Some(1));
        assert_eq!(by_verb("simulate").get("count").unwrap().as_u64(), Some(1));
        assert_eq!(by_verb("greedy").get("count").unwrap().as_u64(), Some(0));
        let buckets = by_verb("evaluate").get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), NUM_BUCKETS);
        // 40 us -> [32, 64) -> bucket 5.
        assert_eq!(buckets[5].as_u64(), Some(1));
        assert_eq!(by_verb("evaluate").get("total_us").unwrap().as_u64(), Some(40));
    }
}
