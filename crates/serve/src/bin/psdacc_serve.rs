//! `psdacc-serve` — the networked evaluation service CLI.
//!
//! ```text
//! psdacc-serve daemon --addr 127.0.0.1:7341 --store DIR [--threads N]
//! psdacc-serve submit --workers HOST:PORT[,HOST:PORT...] [--graph NAME=FILE]...
//!                     [--trace-dir DIR] SPECFILE
//! psdacc-serve stats  --workers HOST:PORT[,HOST:PORT...]
//! psdacc-serve scenarios --workers HOST:PORT
//! psdacc-serve describe --workers HOST:PORT
//! ```
//!
//! `daemon` serves forever; results stream to each client as JSON lines.
//! `submit` shards a batch spec across daemons and prints merged result
//! lines to stdout (summaries to stderr), exiting nonzero if any job
//! failed; `--graph NAME=FILE` (repeatable) registers a declarative
//! `GraphSpec` on **every** worker via `define_scenario` before the batch
//! is submitted, so spec lines may reference it as `scenario NAME`;
//! `--trace-dir DIR` resolves `"trace":"<hash>"` references in measured
//! nodes to inline samples from a content-addressed trace store before
//! definitions ship (daemons never hold trace state).
//! `stats` / `scenarios` / `describe` print each daemon's one-line answer.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use psdacc_engine::{BatchSpec, Engine, ScenarioRegistry};
use psdacc_serve::{client, Server};
use psdacc_store::PersistentCache;

const USAGE: &str = "usage:
  psdacc-serve daemon --addr HOST:PORT [--store DIR] [--store-max-entries N] [--threads N]
                      [--max-connections N] [--trace-limit N]
                      [--chaos-unit-delay-ms MS] [--chaos-die-after-units N]
  psdacc-serve submit --workers HOST:PORT[,HOST:PORT...] [--graph NAME=FILE]...
                      [--trace-dir DIR] SPECFILE
  psdacc-serve stats --workers HOST:PORT[,HOST:PORT...]
  psdacc-serve metrics --workers HOST:PORT[,HOST:PORT...] [--format text|json]
  psdacc-serve scenarios --workers HOST:PORT[,HOST:PORT...]
  psdacc-serve describe --workers HOST:PORT[,HOST:PORT...]

The daemon speaks newline-delimited JSON (kinds: evaluate, greedy,
min-uniform, simulate, define_scenario, describe, evaluate_units, hello,
metrics, scenarios, stats, trace). `metrics` prints each daemon's
Prometheus text exposition (or the canonical JSON registry with
--format json). With
--store, preprocessing persists to disk and restarts warm-start with
zero builds; --store-max-entries caps the on-disk record count (LRU
eviction, loads keep entries hot). --max-connections refuses connections
beyond the cap with one error line (backpressure). --trace-limit sets
how many batches' daemon-side traces stay fetchable before FIFO
eviction (default 8; `stats` reports retained/dropped counts). The
--chaos-* flags
inject faults (per-unit delay; abrupt mid-stream death after N units)
for scheduler testing and CI. `submit` expands a batch spec locally,
round-robins the jobs across the workers, and merges the streamed
results back into submission order; for dynamic work-stealing dispatch
across a heterogeneous fleet use `psdacc-sched submit` instead.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("daemon") => cmd_daemon(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("stats") => cmd_control(&args[1..], "stats"),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("scenarios") => cmd_control(&args[1..], "scenarios"),
        Some("describe") => cmd_control(&args[1..], "describe"),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Single-valued flags, repeated `--graph` values, and the positional
/// argument of one parsed command line.
type ParsedArgs = (BTreeMap<String, String>, Vec<String>, Option<String>);

/// Parses `--flag value` pairs plus at most one positional argument.
/// `--graph` is repeatable; its values are collected separately.
fn parse_flags(
    args: &[String],
    allowed: &[&str],
    positional_name: Option<&str>,
) -> Result<ParsedArgs, String> {
    let mut flags = BTreeMap::new();
    let mut graphs = Vec::new();
    let mut positional = None;
    let mut i = 0;
    while i < args.len() {
        let token = args[i].as_str();
        if token.starts_with("--") {
            if !allowed.contains(&token) {
                return Err(format!(
                    "unknown argument `{token}` (allowed: {})",
                    allowed.join(", ")
                ));
            }
            let value = args.get(i + 1).ok_or_else(|| format!("missing value for {token}"))?;
            if token == "--graph" {
                graphs.push(value.clone());
            } else {
                flags.insert(token.to_string(), value.clone());
            }
            i += 2;
        } else {
            match positional_name {
                Some(_) if positional.is_none() => {
                    positional = Some(token.to_string());
                    i += 1;
                }
                Some(name) => return Err(format!("more than one {name} given")),
                None => return Err(format!("unexpected argument `{token}`")),
            }
        }
    }
    Ok((flags, graphs, positional))
}

fn parse_workers(flags: &BTreeMap<String, String>) -> Result<Vec<String>, String> {
    let raw = flags
        .get("--workers")
        .ok_or_else(|| "missing --workers HOST:PORT[,HOST:PORT...]".to_string())?;
    let workers: Vec<String> =
        raw.split(',').map(str::trim).filter(|w| !w.is_empty()).map(String::from).collect();
    if workers.is_empty() {
        return Err("empty --workers list".to_string());
    }
    Ok(workers)
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

fn cmd_daemon(args: &[String]) -> ExitCode {
    let allowed = [
        "--addr",
        "--store",
        "--store-max-entries",
        "--threads",
        "--max-connections",
        "--trace-limit",
        "--chaos-unit-delay-ms",
        "--chaos-die-after-units",
    ];
    let (flags, _, _) = match parse_flags(args, &allowed, None) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let Some(addr) = flags.get("--addr") else {
        eprintln!("daemon needs --addr HOST:PORT\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let threads = match flags.get("--threads").map(|v| v.parse::<usize>()) {
        None => default_threads(),
        Some(Ok(n)) if n >= 1 => n,
        _ => {
            eprintln!("--threads must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let max_entries = match flags.get("--store-max-entries").map(|v| v.parse::<usize>()) {
        None => None,
        Some(Ok(n)) if n >= 1 => Some(n),
        _ => {
            eprintln!("--store-max-entries must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    if max_entries.is_some() && !flags.contains_key("--store") {
        eprintln!("--store-max-entries needs --store DIR");
        return ExitCode::FAILURE;
    }
    let mut config = psdacc_serve::ServerConfig::default();
    match flags.get("--max-connections").map(|v| v.parse::<usize>()) {
        None => {}
        Some(Ok(n)) if n >= 1 => config.max_connections = Some(n),
        _ => {
            eprintln!("--max-connections must be a positive integer");
            return ExitCode::FAILURE;
        }
    }
    match flags.get("--trace-limit").map(|v| v.parse::<usize>()) {
        None => {}
        Some(Ok(n)) if n >= 1 => config.trace_limit = Some(n),
        _ => {
            eprintln!("--trace-limit must be a positive integer");
            return ExitCode::FAILURE;
        }
    }
    match flags.get("--chaos-unit-delay-ms").map(|v| v.parse::<u64>()) {
        None => {}
        Some(Ok(ms)) => config.chaos_unit_delay = Duration::from_millis(ms),
        _ => {
            eprintln!("--chaos-unit-delay-ms must be a non-negative integer");
            return ExitCode::FAILURE;
        }
    }
    match flags.get("--chaos-die-after-units").map(|v| v.parse::<usize>()) {
        None => {}
        Some(Ok(n)) if n >= 1 => config.chaos_die_after_units = Some(n),
        _ => {
            eprintln!("--chaos-die-after-units must be a positive integer");
            return ExitCode::FAILURE;
        }
    }
    let engine = match flags.get("--store") {
        Some(dir) => match PersistentCache::open_with_limit(dir, max_entries) {
            Ok(cache) => Engine::with_shared_cache(threads, Arc::new(cache)),
            Err(e) => {
                eprintln!("cannot open store {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Engine::new(threads),
    };
    let server = match Server::bind_with(addr, engine, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(bound) => eprintln!(
            "psdacc-serve: listening on {bound} with {threads} threads{}",
            match flags.get("--store") {
                Some(dir) => format!(", store {dir}"),
                None => ", in-memory cache".to_string(),
            }
        ),
        Err(e) => eprintln!("psdacc-serve: {e}"),
    }
    server.run();
    ExitCode::SUCCESS
}

fn cmd_submit(args: &[String]) -> ExitCode {
    let (flags, graphs, positional) = match parse_flags(
        args,
        &["--workers", "--timeout-seconds", "--graph", "--trace-dir"],
        Some("SPECFILE"),
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let workers = match parse_workers(&flags) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let Some(spec_path) = positional else {
        eprintln!("submit needs a SPECFILE\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let registry = ScenarioRegistry::new();
    // Trace references resolve client-side: daemons only ever see inline
    // samples, so a graph's content identity is supply-independent.
    let traces = match flags.get("--trace-dir").map(psdacc_engine::TraceStore::open).transpose() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("--trace-dir: {e}");
            return ExitCode::FAILURE;
        }
    };
    let definitions = match registry.define_graph_files_resolved(&graphs, traces.as_ref()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match BatchSpec::parse_with(&text, &registry) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Wait for every daemon (concurrently) so `daemon & submit` scripting
    // just works — and so a dead fleet fails fast with *every* unreachable
    // address named, not a serial hang per corpse.
    let timeout = flags.get("--timeout-seconds").and_then(|v| v.parse::<u64>().ok()).unwrap_or(30);
    if let Err(e) = client::wait_all_ready(&workers, Duration::from_secs(timeout)) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    // Registered graphs must exist on every worker before any shard may
    // reference them by name.
    if let Err(e) = client::define_scenarios(&workers, &definitions) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    let stdout = std::io::stdout();
    let outcome = {
        let mut out = stdout.lock();
        client::submit_streaming(&workers, &spec.jobs(), |line| {
            use std::io::Write as _;
            let _ = writeln!(out, "{line}");
        })
    };
    match outcome {
        Ok(outcome) => {
            for (worker, summary) in workers.iter().zip(&outcome.summaries) {
                eprintln!("{worker}: {summary}");
            }
            eprintln!(
                "{} jobs across {} workers | {} failed",
                outcome.lines.len(),
                workers.len(),
                outcome.failed
            );
            if outcome.failed == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `metrics`: fetch each daemon's metrics exposition. Text (Prometheus)
/// by default; `--format json` prints the canonical registry object.
fn cmd_metrics(args: &[String]) -> ExitCode {
    let (flags, _, _) = match parse_flags(args, &["--workers", "--format"], None) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let workers = match parse_workers(&flags) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let as_json = match flags.get("--format").map(String::as_str) {
        None | Some("text") => false,
        Some("json") => true,
        Some(other) => {
            eprintln!("--format must be `text` or `json`, not `{other}`");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    for worker in &workers {
        match client::request_control(worker, "metrics") {
            Ok(line) => {
                let field = if as_json { "metrics" } else { "text" };
                let rendered = psdacc_engine::json::parse(&line).ok().and_then(|v| {
                    let f = v.get(field)?;
                    Some(if as_json { f.to_json_line() } else { f.as_str()?.to_string() })
                });
                match rendered {
                    Some(text) => {
                        if workers.len() > 1 {
                            println!("# daemon {worker}");
                        }
                        print!("{text}");
                        if as_json {
                            println!();
                        }
                    }
                    None => {
                        eprintln!("{worker}: unexpected metrics reply: {line}");
                        ok = false;
                    }
                }
            }
            Err(e) => {
                eprintln!("{worker}: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_control(args: &[String], kind: &str) -> ExitCode {
    let (flags, _, _) = match parse_flags(args, &["--workers"], None) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let workers = match parse_workers(&flags) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    for worker in &workers {
        match client::request_control(worker, kind) {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("{worker}: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
