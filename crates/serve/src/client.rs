//! The sharding client: round-robins a batch's jobs across daemons and
//! merges the streamed results back into submission order.
//!
//! Job `i` of the expanded batch goes to worker `i % workers`, tagged with
//! `"id": i`. Each worker connection writes its share, half-closes, and
//! reads results; a reorder buffer on the submitting side emits lines the
//! moment the next-in-order id arrives — so output is **identical** to a
//! single-process `psdacc-engine run` of the same spec (modulo timing
//! fields), while the preprocessing and evaluation ran on N machines.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use psdacc_engine::json::{self, Json};
use psdacc_engine::JobSpec;

use crate::error::ServeError;
use crate::protocol::{define_request_line, job_request_line, parse_define_ack, read_capped_line};

/// One named graph definition to forward to daemons: `(name, canonical
/// GraphSpec JSON)`.
pub type ScenarioDefinition = (String, String);

/// Default bound on one connection attempt. An unreachable daemon must be
/// a prompt, named error — not a connect() hanging for the kernel's
/// multi-minute SYN retry budget.
pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Resolves `addr` and connects with [`CONNECT_TIMEOUT`] per candidate
/// address. Every failure names the daemon address, so a dead fleet
/// member is identifiable from the error alone.
///
/// # Errors
///
/// [`ServeError::Io`] naming `addr` when it does not resolve or no
/// candidate accepts within the timeout.
pub fn connect(addr: &str) -> Result<TcpStream, ServeError> {
    connect_with_timeout(addr, CONNECT_TIMEOUT)
}

/// [`connect`] with an explicit per-candidate timeout.
///
/// # Errors
///
/// [`ServeError::Io`] naming `addr`.
pub fn connect_with_timeout(addr: &str, timeout: Duration) -> Result<TcpStream, ServeError> {
    let candidates: Vec<_> = addr
        .to_socket_addrs()
        .map_err(|e| ServeError::Io(format!("daemon address {addr} does not resolve: {e}")))?
        .collect();
    let mut last: Option<std::io::Error> = None;
    for candidate in &candidates {
        match TcpStream::connect_timeout(candidate, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
    }
    Err(ServeError::Io(match last {
        Some(e) => format!("daemon at {addr} is unreachable: {e}"),
        None => format!("daemon address {addr} resolves to nothing"),
    }))
}

/// What a sharded submission produced.
#[derive(Debug)]
pub struct ShardOutcome {
    /// Result JSON lines, in submission (job-id) order.
    pub lines: Vec<String>,
    /// How many results carried an `error` field.
    pub failed: usize,
    /// One raw `{"kind":"summary",...}` line per worker, in worker order.
    pub summaries: Vec<String>,
}

/// Submits `jobs` across `workers`, returning everything merged in order.
///
/// # Errors
///
/// See [`submit_streaming`].
pub fn submit(workers: &[String], jobs: &[JobSpec]) -> Result<ShardOutcome, ServeError> {
    submit_streaming(workers, jobs, |_line| {})
}

/// [`submit`] that additionally invokes `on_line` for each result line in
/// submission order, as soon as its turn is ready — the streaming path the
/// CLI uses for stdout.
///
/// # Errors
///
/// [`ServeError::Io`] for connection failures, [`ServeError::Protocol`]
/// when a daemon reports a protocol error or a result stream is
/// incomplete.
pub fn submit_streaming(
    workers: &[String],
    jobs: &[JobSpec],
    mut on_line: impl FnMut(&str),
) -> Result<ShardOutcome, ServeError> {
    if workers.is_empty() {
        return Err(ServeError::Protocol("no workers given".to_string()));
    }
    let (tx, rx) = mpsc::channel::<Result<WorkerMsg, ServeError>>();
    let mut lines: Vec<Option<String>> = vec![None; jobs.len()];
    let mut summaries: Vec<Option<String>> = vec![None; workers.len()];
    let mut failed = 0usize;
    let mut first_error: Option<ServeError> = None;
    std::thread::scope(|scope| {
        for (worker_index, worker) in workers.iter().enumerate() {
            let tx = tx.clone();
            let share: Vec<(usize, &JobSpec)> = jobs
                .iter()
                .enumerate()
                .filter(|(i, _)| i % workers.len() == worker_index)
                .collect();
            scope.spawn(move || {
                if let Err(e) = drive_worker(worker, worker_index, &share, &tx) {
                    let _ = tx.send(Err(e));
                }
            });
        }
        drop(tx);
        // Merge: emit the contiguous prefix as it becomes available.
        let mut next_to_emit = 0usize;
        for msg in rx {
            match msg {
                Ok(WorkerMsg::Line { id, line, failed: f }) => {
                    if f {
                        failed += 1;
                    }
                    if id < lines.len() && lines[id].is_none() {
                        lines[id] = Some(line);
                        while next_to_emit < lines.len() {
                            match &lines[next_to_emit] {
                                Some(line) => {
                                    on_line(line);
                                    next_to_emit += 1;
                                }
                                None => break,
                            }
                        }
                    } else if first_error.is_none() {
                        first_error = Some(ServeError::Protocol(format!(
                            "duplicate or out-of-range result id {id}"
                        )));
                    }
                }
                Ok(WorkerMsg::Summary { worker, line }) => summaries[worker] = Some(line),
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
    });
    if let Some(e) = first_error {
        return Err(e);
    }
    let complete: Vec<String> = lines.into_iter().flatten().collect();
    if complete.len() != jobs.len() {
        return Err(ServeError::Protocol(format!(
            "received {} of {} results (a worker dropped jobs)",
            complete.len(),
            jobs.len()
        )));
    }
    Ok(ShardOutcome {
        lines: complete,
        failed,
        summaries: summaries.into_iter().flatten().collect(),
    })
}

/// One worker connection: write the share, half-close, stream back.
fn drive_worker(
    addr: &str,
    worker_index: usize,
    share: &[(usize, &JobSpec)],
    tx: &mpsc::Sender<Result<WorkerMsg, ServeError>>,
) -> Result<(), ServeError> {
    let stream = connect(addr)?;
    let reader = BufReader::new(stream.try_clone()?);
    {
        let mut writer = BufWriter::new(&stream);
        for (id, spec) in share {
            writeln!(writer, "{}", job_request_line(*id, spec)?)?;
        }
        writer.flush()?;
    }
    stream.shutdown(Shutdown::Write)?;
    let mut reader = reader;
    while let Some(line) = read_capped_line(&mut reader)? {
        if line.trim().is_empty() {
            continue;
        }
        let line = line.trim_end().to_string();
        let value = json::parse(&line)
            .map_err(|e| ServeError::Protocol(format!("{addr}: bad response line: {e}")))?;
        match value.get("kind").and_then(Json::as_str) {
            Some("summary") => {
                let _ = tx.send(Ok(WorkerMsg::Summary { worker: worker_index, line }));
            }
            // Definition acknowledgements are not results; skip them so a
            // submission may interleave defines with job lines.
            Some("scenario_defined") => {}
            Some("error") => {
                let detail =
                    value.get("error").and_then(Json::as_str).unwrap_or("unspecified").to_string();
                return Err(ServeError::Protocol(format!("{addr}: daemon rejected: {detail}")));
            }
            _ => {
                let id = value.get("job").and_then(Json::as_u64).ok_or_else(|| {
                    ServeError::Protocol(format!("{addr}: result line without job id"))
                })? as usize;
                let failed = value.get("error").is_some();
                let _ = tx.send(Ok(WorkerMsg::Line { id, line, failed }));
            }
        }
    }
    Ok(())
}

/// Message shape worker connections emit toward the merging thread.
enum WorkerMsg {
    /// One result line.
    Line {
        /// Submission-order id.
        id: usize,
        /// Raw JSON line.
        line: String,
        /// Whether the result carries an `error` field.
        failed: bool,
    },
    /// A worker's batch summary.
    Summary {
        /// Worker index in the submission's worker list.
        worker: usize,
        /// Raw JSON line.
        line: String,
    },
}

/// Registers the given graph definitions on **every** worker (one
/// connection per worker, acknowledgements verified), so subsequent
/// submissions may reference them by name no matter which daemon a job
/// lands on. Definitions are content-addressed, so re-registering on a
/// warm daemon is a no-op for its caches.
///
/// # Errors
///
/// [`ServeError::Io`] for unreachable workers, [`ServeError::Protocol`]
/// when any daemon rejects a definition (the error names both the worker
/// and the definition).
pub fn define_scenarios(
    workers: &[String],
    definitions: &[ScenarioDefinition],
) -> Result<(), ServeError> {
    if definitions.is_empty() {
        return Ok(());
    }
    for worker in workers {
        let stream = connect(worker)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        {
            let mut writer = BufWriter::new(&stream);
            for (name, json) in definitions {
                writeln!(writer, "{}", define_request_line(name, json))?;
            }
            writer.flush()?;
        }
        stream.shutdown(Shutdown::Write)?;
        for (name, _) in definitions {
            let line = read_capped_line(&mut reader)?
                .map(|l| l.trim_end().to_string())
                .ok_or_else(|| {
                    ServeError::Protocol(format!(
                        "{worker}: connection closed before acknowledging `{name}`"
                    ))
                })?;
            parse_define_ack(&line)
                .map_err(|e| ServeError::Protocol(format!("{worker}: define `{name}`: {e}")))?;
        }
    }
    Ok(())
}

/// Sends one control request (`"stats"` or `"scenarios"`) and returns the
/// daemon's one-line answer.
///
/// # Errors
///
/// [`ServeError::Io`] / [`ServeError::Protocol`].
pub fn request_control(addr: &str, kind: &str) -> Result<String, ServeError> {
    let stream = connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    {
        let mut writer = BufWriter::new(&stream);
        writeln!(writer, "{{\"kind\":\"{kind}\"}}")?;
        writer.flush()?;
    }
    stream.shutdown(Shutdown::Write)?;
    let line = read_capped_line(&mut reader)?
        .map(|l| l.trim_end().to_string())
        .filter(|l| !l.is_empty())
        .ok_or_else(|| ServeError::Protocol(format!("{addr}: empty control response")))?;
    Ok(line)
}

/// [`wait_ready`] over a whole worker list, probing **concurrently** and
/// collecting every failure — so a submission against a fleet with three
/// dead daemons reports all three addresses at once after one timeout,
/// instead of serially burning one timeout per corpse.
///
/// # Errors
///
/// [`ServeError::Io`] listing every unreachable address.
pub fn wait_all_ready(workers: &[String], timeout: Duration) -> Result<(), ServeError> {
    let mut failures: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let probes: Vec<_> = workers
            .iter()
            .map(|worker| scope.spawn(move || wait_ready(worker, timeout).err()))
            .collect();
        for (worker, probe) in workers.iter().zip(probes) {
            if let Some(e) = probe.join().expect("probe thread") {
                failures.push(format!("{worker} ({e})"));
            }
        }
    });
    if failures.is_empty() {
        Ok(())
    } else {
        Err(ServeError::Io(format!(
            "{} of {} daemons unreachable: {}",
            failures.len(),
            workers.len(),
            failures.join(", ")
        )))
    }
}

/// Polls a daemon's `stats` endpoint until it answers (startup
/// synchronization for scripts and CI).
///
/// # Errors
///
/// [`ServeError::Io`] when the daemon never comes up within `timeout`.
pub fn wait_ready(addr: &str, timeout: Duration) -> Result<(), ServeError> {
    let deadline = Instant::now() + timeout;
    loop {
        match request_control(addr, "stats") {
            Ok(_) => return Ok(()),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(ServeError::Io(format!(
                        "daemon at {addr} not ready within {timeout:?}: {e}"
                    )));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}
