//! Property test: trace JSONL serialization is a fixpoint under
//! serialize ∘ parse — any `TraceEvent` survives a round trip through its
//! wire line exactly, and the parsed event re-serializes byte-identically.

use proptest::prelude::*;

use psdacc_obs::trace::MAX_TS_NS;
use psdacc_obs::{EventKind, Severity, SpanId, TraceEvent};

/// Name/batch corpus: dot-scoped ASCII like real spans, plus strings that
/// stress the JSON escaping (quotes, backslashes, controls, non-ASCII).
const NAMES: [&str; 6] =
    ["fleet.batch", "serve.unit", "unit.tau_eval", "weird \"name\"\n\\", "héllo·τ", ""];

/// Characters field values are drawn from (escaping-hostile on purpose).
const VALUE_CHARS: [char; 12] =
    ['a', 'z', '0', '"', '\\', '\n', '\t', '\r', ' ', 'é', '·', '\u{1}'];

fn arb_string(max_len: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..VALUE_CHARS.len(), 0..max_len)
        .prop_map(|ids| ids.into_iter().map(|i| VALUE_CHARS[i]).collect())
}

/// Field keys: plain ASCII identifiers (the writer emits keys verbatim,
/// so keys are restricted by contract; values are arbitrary).
fn arb_key() -> impl Strategy<Value = String> {
    const KEY_CHARS: [char; 8] = ['a', 'b', 'k', 'x', '_', '0', '7', 'z'];
    prop::collection::vec(0usize..KEY_CHARS.len(), 1..8)
        .prop_map(|ids| ids.into_iter().map(|i| KEY_CHARS[i]).collect())
}

fn arb_fields() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec((arb_key(), arb_string(12)), 0..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn serialize_parse_is_a_fixpoint(
        ts_ns in 0..MAX_TS_NS,
        name_idx in 0usize..NAMES.len(),
        is_span in prop::bool::ANY,
        dur_ns in 0..MAX_TS_NS,
        span in 0u64..u64::MAX,
        has_parent in prop::bool::ANY,
        parent in 0u64..u64::MAX,
        batch in arb_string(12),
        unit in 0..MAX_TS_NS,
        has_unit in prop::bool::ANY,
        has_daemon in prop::bool::ANY,
        warn in prop::bool::ANY,
        fields in arb_fields(),
    ) {
        let event = TraceEvent {
            ts_ns,
            name: NAMES[name_idx].to_string(),
            kind: if is_span { EventKind::Span { dur_ns } } else { EventKind::Event },
            span: SpanId(span),
            parent: has_parent.then_some(SpanId(parent)),
            batch,
            unit: has_unit.then_some(unit),
            daemon: has_daemon.then(|| "127.0.0.1:7455".to_string()),
            severity: if warn { Severity::Warn } else { Severity::Info },
            fields,
        };
        let line = event.to_json_line();
        let back = TraceEvent::parse(&line).unwrap();
        prop_assert_eq!(&back, &event);
        prop_assert_eq!(back.to_json_line(), line);
    }
}
