//! First-install-wins under real concurrency: `stage::install` and
//! `profile::install` both promise that when N threads race to install,
//! exactly one wins and every subsequent record lands in the winner's
//! sink. These tests own the process-global state, so they live in their
//! own integration binary (the in-crate lifecycle tests install their own
//! globals and would collide).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use psdacc_obs::{profile, stage, MetricsRegistry, Profiler};

const RACERS: usize = 16;

/// Races `stage::install` from many threads through a barrier: exactly
/// one call returns `true`, `stage::registry()` is that winner's
/// registry, and records from every thread land in it.
#[test]
fn stage_install_race_has_exactly_one_winner() {
    let barrier = Arc::new(Barrier::new(RACERS));
    let wins = Arc::new(AtomicUsize::new(0));
    let registries: Vec<Arc<MetricsRegistry>> =
        (0..RACERS).map(|_| Arc::new(MetricsRegistry::new())).collect();
    let threads: Vec<_> = registries
        .iter()
        .map(|reg| {
            let reg = Arc::clone(reg);
            let barrier = Arc::clone(&barrier);
            let wins = Arc::clone(&wins);
            std::thread::spawn(move || {
                barrier.wait();
                if stage::install(reg) {
                    wins.fetch_add(1, Ordering::SeqCst);
                }
                // Whoever lost, recording still works and goes somewhere.
                stage::record("race_ns", stage::timer());
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    assert_eq!(wins.load(Ordering::SeqCst), 1, "exactly one install wins");
    let winner = stage::registry().expect("a sink is installed after the race");
    let winner_idx =
        registries.iter().position(|r| Arc::ptr_eq(r, winner)).expect("winner is one of ours");
    // Every thread recorded after its install attempt; the barrier plus
    // install-before-record ordering means all RACERS records happened
    // with the winner installed... except threads that raced ahead of the
    // winner's `INSTALLED.store`. At least the winner's own record is
    // guaranteed; every record that did land went to the winner.
    let count = winner.histogram("race_ns").count();
    assert!(
        (1..=RACERS as u64).contains(&count),
        "winner received {count} records (expected 1..={RACERS})"
    );
    for (i, reg) in registries.iter().enumerate() {
        if i != winner_idx {
            assert_eq!(reg.histogram("race_ns").count(), 0, "loser {i} received records");
        }
    }
}

/// The same race for `profile::install`: one winner, and frames from
/// every thread aggregate into the winner's call tree.
#[test]
fn profile_install_race_has_exactly_one_winner() {
    let barrier = Arc::new(Barrier::new(RACERS));
    let wins = Arc::new(AtomicUsize::new(0));
    let profilers: Vec<Arc<Profiler>> = (0..RACERS).map(|_| Arc::new(Profiler::new())).collect();
    let threads: Vec<_> = profilers
        .iter()
        .map(|prof| {
            let prof = Arc::clone(prof);
            let barrier = Arc::clone(&barrier);
            let wins = Arc::clone(&wins);
            std::thread::spawn(move || {
                barrier.wait();
                if profile::install(prof) {
                    wins.fetch_add(1, Ordering::SeqCst);
                }
                drop(profile::frame("race"));
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    assert_eq!(wins.load(Ordering::SeqCst), 1, "exactly one install wins");
    let winner = profile::profiler().expect("a profiler is installed after the race");
    let winner_idx =
        profilers.iter().position(|p| Arc::ptr_eq(p, winner)).expect("winner is one of ours");
    let snap = winner.snapshot();
    let race = snap.frames.iter().find(|f| f.path == "race").expect("race frames landed");
    assert!(
        (1..=RACERS as u64).contains(&race.count),
        "winner received {} frames (expected 1..={RACERS})",
        race.count
    );
    for (i, prof) in profilers.iter().enumerate() {
        if i != winner_idx {
            assert!(prof.snapshot().is_empty(), "loser {i} received frames");
        }
    }
}
