//! The `budget` report schema: canonical JSON line + human text table.
//!
//! `psdacc-core`'s noise budget attributes an evaluate-path power number
//! across the nodes that produced it. This module is the presentation
//! layer every consumer shares: the engine embeds the rows in a `budget`
//! job-result line, and the CLI / CI render either the canonical
//! [`BudgetReport::to_json_line`] (machine diffable — byte-identical
//! across local, static-shard, and fleet execution) or the ranked
//! [`BudgetReport::to_text`] table with top-K rows and cumulative share.
//!
//! The crate stays dependency-free: the report is plain data, built
//! either directly or by parsing an engine result line
//! ([`BudgetReport::from_result_line`]).

use crate::json::{self, Json, JsonWriter};

/// One attributed node of a [`BudgetReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetReportRow {
    /// Node index in the scenario's graph.
    pub node: u64,
    /// Block kind (`fir`, `iir`, `gain`, `input`, ...).
    pub block: String,
    /// `auto` (injects noise) or `exact` (exempted, contributes zero).
    pub role: String,
    /// Fractional bits of the node's quantizer (`None` for exact rows).
    pub frac_bits: Option<i64>,
    /// Output-referred spectral mass of the source.
    pub variance_term: f64,
    /// Bilinear mean attribution (`mu_i * M`; the terms sum to `M^2`).
    pub mean_term: f64,
    /// Ledger entry — the column folds bit-exactly to the report power.
    pub contribution: f64,
    /// `contribution / power`.
    pub share: f64,
}

impl BudgetReportRow {
    /// Canonical JSON object for the row (fixed field order).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.field_u64("node", self.node);
        w.field_str("block", &self.block);
        w.field_str("role", &self.role);
        if let Some(bits) = self.frac_bits {
            w.field_i64("bits", bits);
        }
        w.field_f64("variance_term", self.variance_term);
        w.field_f64("mean_term", self.mean_term);
        w.field_f64("contribution", self.contribution);
        w.field_f64("share", self.share);
        w.finish()
    }

    fn from_json(value: &Json) -> Result<Self, String> {
        let req_f64 = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("budget row needs a number `{key}`"))
        };
        Ok(BudgetReportRow {
            node: value
                .get("node")
                .and_then(Json::as_u64)
                .ok_or_else(|| "budget row needs an integer `node`".to_string())?,
            block: value
                .get("block")
                .and_then(Json::as_str)
                .ok_or_else(|| "budget row needs a string `block`".to_string())?
                .to_string(),
            role: value
                .get("role")
                .and_then(Json::as_str)
                .ok_or_else(|| "budget row needs a string `role`".to_string())?
                .to_string(),
            frac_bits: value.get("bits").and_then(Json::as_i64),
            variance_term: req_f64("variance_term")?,
            mean_term: req_f64("mean_term")?,
            contribution: req_f64("contribution")?,
            share: req_f64("share")?,
        })
    }
}

/// A noise-budget report for one `(scenario, npsd, bits)` evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetReport {
    /// Canonical scenario key.
    pub scenario: String,
    /// PSD grid size.
    pub npsd: u64,
    /// Uniform fractional bits of the evaluated plan.
    pub frac_bits: i64,
    /// Total output noise power (the evaluate-path value, bit-exact).
    pub power: f64,
    /// Total output noise mean.
    pub mean: f64,
    /// Total output noise variance.
    pub variance: f64,
    /// Attribution rows in ledger order (fold reproduces `power`).
    pub rows: Vec<BudgetReportRow>,
}

impl BudgetReport {
    /// Builds the report from an engine `budget` job-result line (a JSON
    /// object with `"kind":"budget"` and a `budget` rows array).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the missing or mistyped field.
    pub fn from_result_line(line: &str) -> Result<Self, String> {
        let value = json::parse(line)?;
        match value.get("kind").and_then(Json::as_str) {
            Some("budget") => {}
            Some(other) => return Err(format!("not a budget result (kind `{other}`)")),
            None => return Err("result line has no `kind`".to_string()),
        }
        let req_f64 = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("budget result needs a number `{key}`"))
        };
        let scenario = value
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or_else(|| "budget result needs a string `scenario`".to_string())?
            .to_string();
        let npsd = value
            .get("npsd")
            .and_then(Json::as_u64)
            .ok_or_else(|| "budget result needs an integer `npsd`".to_string())?;
        let frac_bits = value
            .get("frac_bits")
            .and_then(Json::as_i64)
            .ok_or_else(|| "budget result needs an integer `frac_bits`".to_string())?;
        let power = req_f64("power")?;
        let mean = req_f64("mean")?;
        let variance = req_f64("variance")?;
        let rows = value
            .get("budget")
            .and_then(Json::as_array)
            .ok_or_else(|| "budget result needs a `budget` rows array".to_string())?
            .iter()
            .map(BudgetReportRow::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BudgetReport { scenario, npsd, frac_bits, power, mean, variance, rows })
    }

    /// Canonical single-line JSON of the whole report
    /// (`"kind":"budget_report"`, fixed field order) — the wire/artifact
    /// form, byte-stable for identity diffs.
    pub fn to_json_line(&self) -> String {
        let mut w = JsonWriter::new();
        w.field_str("kind", "budget_report");
        w.field_str("scenario", &self.scenario);
        w.field_u64("npsd", self.npsd);
        w.field_i64("frac_bits", self.frac_bits);
        w.field_f64("power", self.power);
        w.field_f64("mean", self.mean);
        w.field_f64("variance", self.variance);
        let rows: Vec<String> = self.rows.iter().map(BudgetReportRow::to_json).collect();
        w.field_raw("rows", &format!("[{}]", rows.join(",")));
        w.finish()
    }

    /// Row indices ranked by descending contribution (ties by node id).
    pub fn ranked(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.rows.len()).collect();
        order.sort_by(|&a, &b| {
            self.rows[b]
                .contribution
                .partial_cmp(&self.rows[a].contribution)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(self.rows[a].node.cmp(&self.rows[b].node))
        });
        order
    }

    /// Human-readable ranked table: the `top_k` largest contributors with
    /// per-row and cumulative share, then a one-line summary of the
    /// remainder (count and residual share) so truncation is explicit.
    pub fn to_text(&self, top_k: usize) -> String {
        let mut out = format!(
            "noise budget — {} (npsd={}, bits={})\n\
             power {:.6e} = mean^2 + variance ({:.6e} + {:.6e})\n",
            self.scenario,
            self.npsd,
            self.frac_bits,
            self.power,
            self.mean * self.mean,
            self.variance
        );
        out.push_str("rank  node  block       role   bits  contribution   share    cum\n");
        let ranked = self.ranked();
        let shown = ranked.len().min(top_k.max(1));
        let mut cum = 0.0;
        for (rank, &i) in ranked[..shown].iter().enumerate() {
            let r = &self.rows[i];
            cum += r.share;
            let bits = r.frac_bits.map_or_else(|| "-".to_string(), |b| b.to_string());
            out.push_str(&format!(
                "{:>4}  {:>4}  {:<10}  {:<5}  {:>4}  {:>12.4e}  {:>5.1}%  {:>5.1}%\n",
                rank + 1,
                r.node,
                r.block,
                r.role,
                bits,
                r.contribution,
                r.share * 100.0,
                cum * 100.0
            ));
        }
        if shown < ranked.len() {
            let rest: f64 = ranked[shown..].iter().map(|&i| self.rows[i].share).sum();
            out.push_str(&format!(
                "      ({} more rows, {:.1}% of power)\n",
                ranked.len() - shown,
                rest * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BudgetReport {
        BudgetReport {
            scenario: "fir-bank index=3".to_string(),
            npsd: 128,
            frac_bits: 12,
            power: 1.0e-8,
            mean: -1.0e-5,
            variance: 9.9e-9,
            rows: vec![
                BudgetReportRow {
                    node: 0,
                    block: "input".to_string(),
                    role: "auto".to_string(),
                    frac_bits: Some(12),
                    variance_term: 2.4e-9,
                    mean_term: 1.0e-10,
                    contribution: 2.5e-9,
                    share: 0.25,
                },
                BudgetReportRow {
                    node: 1,
                    block: "fir".to_string(),
                    role: "auto".to_string(),
                    frac_bits: Some(12),
                    variance_term: 7.5e-9,
                    mean_term: 0.0,
                    contribution: 7.5e-9,
                    share: 0.75,
                },
                BudgetReportRow {
                    node: 2,
                    block: "gain".to_string(),
                    role: "exact".to_string(),
                    frac_bits: None,
                    variance_term: 0.0,
                    mean_term: 0.0,
                    contribution: 0.0,
                    share: 0.0,
                },
            ],
        }
    }

    #[test]
    fn result_line_round_trips_into_a_report() {
        let report = sample();
        // Assemble a result line the way the engine does: flat fields
        // plus the rows array under `budget`.
        let mut w = JsonWriter::new();
        w.field_str("kind", "budget");
        w.field_str("scenario", &report.scenario);
        w.field_u64("npsd", report.npsd);
        w.field_i64("frac_bits", report.frac_bits);
        w.field_f64("power", report.power);
        w.field_f64("mean", report.mean);
        w.field_f64("variance", report.variance);
        let rows: Vec<String> = report.rows.iter().map(BudgetReportRow::to_json).collect();
        w.field_raw("budget", &format!("[{}]", rows.join(",")));
        let back = BudgetReport::from_result_line(&w.finish()).unwrap();
        assert_eq!(back, report, "floats survive bit-exactly");
        // The canonical report line is parseable JSON with stable kind.
        let line = report.to_json_line();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("budget_report"));
        assert_eq!(v.get("rows").and_then(Json::as_array).map(<[Json]>::len), Some(3));
    }

    #[test]
    fn malformed_result_lines_are_described() {
        for (line, needle) in [
            ("not json", "bad literal"),
            (r#"{"kind":"psd"}"#, "not a budget result"),
            (r#"{"kind":"budget","scenario":"s"}"#, "npsd"),
            (
                r#"{"kind":"budget","scenario":"s","npsd":64,"frac_bits":8,"power":1.0,"mean":0.0,"variance":1.0}"#,
                "rows array",
            ),
            (
                r#"{"kind":"budget","scenario":"s","npsd":64,"frac_bits":8,"power":1.0,"mean":0.0,"variance":1.0,"budget":[{"node":0}]}"#,
                "block",
            ),
        ] {
            let err = BudgetReport::from_result_line(line).unwrap_err();
            assert!(err.contains(needle), "`{line}` -> `{err}` (wanted `{needle}`)");
        }
    }

    #[test]
    fn text_table_ranks_and_truncates_explicitly() {
        let report = sample();
        let text = report.to_text(1);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("fir-bank index=3"), "{text}");
        // Top-1: the fir row (75%) leads; the remainder is summarized.
        assert!(lines[3].contains("fir") && lines[3].contains("75.0%"), "{text}");
        assert!(text.contains("2 more rows"), "{text}");
        // Full table shows the exact row with a `-` bits column.
        let full = report.to_text(10);
        assert!(full.contains("exact"), "{full}");
        assert!(!full.contains("more rows"), "{full}");
        let ranked = report.ranked();
        assert_eq!(ranked[0], 1, "largest contributor first");
    }
}
