//! Global stage-timer sink for hot-path profiling hooks.
//!
//! Kernel crates (`psdacc-sfg`, `psdacc-core`) cannot thread a registry
//! handle through their public APIs without polluting them, so profiling
//! hooks go through one process-global sink instead: a harness that wants
//! stage timings calls [`install`] once, and the feature-gated hooks in
//! the kernels call [`timer`]/[`record`]. When nothing is installed —
//! the default, and the only state production daemons run in unless asked
//! — both calls are a single relaxed atomic load and return immediately,
//! and no `Instant::now()` is taken. Stage timing is observational only:
//! it never changes control flow, so results are bit-identical either way.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::metrics::MetricsRegistry;

static SINK: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Installs the process-global stage-metrics sink. **First install
/// wins**: when several threads race, exactly one call returns `true`
/// and every subsequent record from any thread lands in that winner's
/// registry; later calls return `false` and leave the original in place
/// for the process lifetime (there is no uninstall). Asserted under real
/// concurrency by the `install_race` integration test; the same contract
/// holds for [`crate::profile::install`].
pub fn install(registry: Arc<MetricsRegistry>) -> bool {
    let won = SINK.set(registry).is_ok();
    if won {
        INSTALLED.store(true, Ordering::Release);
    }
    won
}

/// Whether a sink is installed (one relaxed load — the hot-path guard).
pub fn enabled() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// The installed registry, if any.
pub fn registry() -> Option<&'static Arc<MetricsRegistry>> {
    if enabled() {
        SINK.get()
    } else {
        None
    }
}

/// Starts a stage timer; `None` (cost: one load) when no sink is
/// installed.
pub fn timer() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Records `start`'s elapsed time into histogram `name` — a no-op when
/// `start` is `None`, so call sites need no branching.
pub fn record(name: &str, start: Option<Instant>) {
    if let (Some(start), Some(reg)) = (start, registry()) {
        reg.histogram(name).record(start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test process shares the global sink, so all behaviors are
    // exercised in a single test body, ordered around one install.
    #[test]
    fn sink_lifecycle() {
        // Before install: timers cost nothing and record() is a no-op.
        assert!(!enabled());
        assert!(timer().is_none());
        record("pre_install_ns", timer());

        let reg = Arc::new(MetricsRegistry::new());
        assert!(install(Arc::clone(&reg)));
        assert!(enabled());

        let t = timer();
        assert!(t.is_some());
        record("stage_ns", t);
        assert_eq!(reg.histogram("stage_ns").count(), 1);
        // The no-op path still works with a sink installed.
        record("stage_ns", None);
        assert_eq!(reg.histogram("stage_ns").count(), 1);

        // Second install loses; the original registry keeps receiving.
        assert!(!install(Arc::new(MetricsRegistry::new())));
        record("stage_ns", timer());
        assert_eq!(reg.histogram("stage_ns").count(), 2);
    }
}
