//! Minimal JSON machinery shared by the engine's result stream, the
//! `psdacc-serve` wire protocol, and the observability layer (metric
//! snapshots and trace JSONL). It lives in `psdacc-obs` — the one crate
//! every layer can depend on — and is re-exported as
//! `psdacc_engine::json` for the existing call sites.
//!
//! The workspace has no serde (the build environment has no crates.io
//! access), so both directions are hand-rolled and deliberately small:
//!
//! * [`JsonWriter`] — append-only object writer producing one-line objects.
//!   `f64` fields use `{:e}`, whose shortest-round-trip guarantee makes
//!   string equality of emitted numbers equivalent to bit equality.
//! * [`Json`] + [`parse`] — a recursive-descent parser for the subset the
//!   protocol needs (objects, arrays, strings, numbers, booleans, null).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value on
    /// lookup, mirroring typical JSON semantics).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (last occurrence wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional parts).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a signed integer (rejects fractional parts).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(v) if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 => {
                Some(*v as i64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Re-serializes this value as one JSON line. Numbers render via
    /// `{:e}` when fractional (shortest-round-trip) and as plain integers
    /// when integral, matching what [`JsonWriter`] emits; object key
    /// order is preserved.
    pub fn to_json_line(&self) -> String {
        let mut buf = String::new();
        self.write_into(&mut buf);
        buf
    }

    fn write_into(&self, buf: &mut String) {
        match self {
            Json::Null => buf.push_str("null"),
            Json::Bool(b) => buf.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) if !v.is_finite() => buf.push_str("null"),
            Json::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
                    let _ = write!(buf, "{}", *v as i64);
                } else {
                    let _ = write!(buf, "{v:e}");
                }
            }
            Json::Str(s) => buf.push_str(&escape_str(s)),
            Json::Arr(items) => {
                buf.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        buf.push(',');
                    }
                    item.write_into(buf);
                }
                buf.push(']');
            }
            Json::Obj(fields) => {
                buf.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        buf.push(',');
                    }
                    buf.push_str(&escape_str(k));
                    buf.push(':');
                    v.write_into(buf);
                }
                buf.push('}');
            }
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// A human-readable description with the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

/// Recursion ceiling: the parser runs on untrusted network input, and a
/// line of a few hundred thousand `[`s must be an error, not a stack
/// overflow (which aborts the whole process, not just the connection).
const MAX_DEPTH: usize = 128;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    token
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number `{token}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogates are not paired up; the protocol never
                        // emits them (the writer escapes only controls).
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are trustworthy).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

/// Append-only single-line JSON object writer.
#[derive(Debug)]
pub struct JsonWriter {
    buf: String,
    first: bool,
}

impl Default for JsonWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonWriter { buf: String::from("{"), first: true }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(name);
        self.buf.push_str("\":");
    }

    /// Appends an escaped string into `buf`, quotes included.
    fn push_escaped(buf: &mut String, value: &str) {
        buf.push('"');
        for c in value.chars() {
            match c {
                '"' => buf.push_str("\\\""),
                '\\' => buf.push_str("\\\\"),
                '\n' => buf.push_str("\\n"),
                '\t' => buf.push_str("\\t"),
                '\r' => buf.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(buf, "\\u{:04x}", c as u32);
                }
                c => buf.push(c),
            }
        }
        buf.push('"');
    }

    /// String field (escaped).
    pub fn field_str(&mut self, name: &str, value: &str) {
        self.key(name);
        Self::push_escaped(&mut self.buf, value);
    }

    /// Float field; non-finite values become `null` (JSON has no Inf/NaN).
    pub fn field_f64(&mut self, name: &str, value: f64) {
        self.key(name);
        if value.is_finite() {
            let _ = write!(self.buf, "{value:e}");
        } else {
            self.buf.push_str("null");
        }
    }

    /// Signed integer field.
    pub fn field_i64(&mut self, name: &str, value: i64) {
        self.key(name);
        self.buf.push_str(&value.to_string());
    }

    /// Unsigned integer field (`u64` covers `usize` everywhere we build).
    pub fn field_u64(&mut self, name: &str, value: u64) {
        self.key(name);
        self.buf.push_str(&value.to_string());
    }

    /// `usize` convenience over [`JsonWriter::field_u64`].
    pub fn field_usize(&mut self, name: &str, value: usize) {
        self.field_u64(name, value as u64);
    }

    /// Boolean field.
    pub fn field_bool(&mut self, name: &str, value: bool) {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Raw field: `value` must itself be valid JSON (e.g. a nested object
    /// produced by another writer, or an array assembled by the caller).
    pub fn field_raw(&mut self, name: &str, value: &str) {
        self.key(name);
        self.buf.push_str(value);
    }

    /// Closes the object and returns the single-line string.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Escapes `value` as a standalone JSON string (quotes included) — for
/// assembling arrays of strings without a writer.
pub fn escape_str(value: &str) -> String {
    let mut buf = String::new();
    JsonWriter::push_escaped(&mut buf, value);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_and_parser_round_trip() {
        let mut w = JsonWriter::new();
        w.field_str("s", "a\"b\\c\nd");
        w.field_f64("x", 1.25e-7);
        w.field_i64("i", -42);
        w.field_usize("u", 7);
        w.field_bool("b", true);
        w.field_raw("arr", "[1,2,3]");
        let line = w.finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.25e-7));
        assert_eq!(v.get("i").unwrap().as_i64(), Some(-42));
        assert_eq!(v.get("u").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("arr").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for &x in &[0.1, 1.0 / 3.0, 2.5e-300, 1.7976931348623157e308, -0.0] {
            let mut w = JsonWriter::new();
            w.field_f64("v", x);
            let line = w.finish();
            let back = parse(&line).unwrap().get("v").unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{line}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.field_f64("v", f64::NAN);
        assert_eq!(w.finish(), r#"{"v":null}"#);
    }

    #[test]
    fn parser_accepts_the_protocol_shapes() {
        let v = parse(r#"{"kind":"evaluate","scenario":"fir-bank index=3","npsd":256,"bits":12}"#)
            .unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("evaluate"));
        assert_eq!(v.get("npsd").unwrap().as_u64(), Some(256));
        let v = parse("  [1, \"two\", null, {\"k\": false}]  ").unwrap();
        assert_eq!(v.as_array().unwrap().len(), 4);
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1e999").is_err(), "non-finite numbers rejected");
    }

    #[test]
    fn hostile_nesting_is_an_error_not_a_stack_overflow() {
        let bomb = "[".repeat(200_000);
        let err = parse(&bomb).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        let objects = "{\"k\":".repeat(200_000);
        assert!(parse(&objects).unwrap_err().contains("nesting"));
        // Reasonable nesting still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn unicode_and_escapes() {
        let v = parse(r#"{"k":"héllo é \t"}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("héllo é \t"));
        assert_eq!(escape_str("a\"b"), r#""a\"b""#);
    }

    #[test]
    fn reserialization_is_a_fixpoint_on_writer_output() {
        // parse ∘ to_json_line is identity on anything a JsonWriter (or
        // the nested raw fields it carries) can emit.
        for line in [
            r#"{"kind":"evaluate","scenario":"a b","npsd":256,"x":1.25e-7,"neg":-42}"#,
            r#"{"arr":[1,"two",null,{"k":false}],"s":"q\"w\\e\nr"}"#,
            r#"{}"#,
            r#"[0,-0.5,18446744073709551615]"#,
        ] {
            let v = parse(line).unwrap();
            let re = v.to_json_line();
            assert_eq!(parse(&re).unwrap(), v, "{line} -> {re}");
        }
        // Integral floats render as integers, fractional via {:e}.
        assert_eq!(Json::Num(256.0).to_json_line(), "256");
        assert_eq!(Json::Num(0.1).to_json_line(), format!("{:e}", 0.1f64));
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn integer_helpers_reject_fractions() {
        let v = parse(r#"{"a":1.5,"b":-3}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), None);
        assert_eq!(v.get("a").unwrap().as_i64(), None);
        assert_eq!(v.get("b").unwrap().as_i64(), Some(-3));
        assert_eq!(v.get("b").unwrap().as_u64(), None);
    }
}
