//! Trace analytics: turn a merged fleet JSONL trace into answers.
//!
//! PR 6 made the fleet emit structured traces; this module consumes
//! them. Given the parsed events of one batch it reconstructs the span
//! tree and derives the three things an operator actually asks of a
//! trace:
//!
//! * **Critical path** — which unit/stage chain bounds wall-clock. The
//!   walk starts at the `fleet.batch` root, picks the last-finishing
//!   `fleet.unit` roundtrip (coordinator clock, so end times are
//!   comparable), crosses to that unit's daemon-side `serve.unit` span,
//!   then repeatedly descends into the longest child stage. Clocks are
//!   per-process, so the walk never compares timestamps across
//!   processes — only durations and parent links, which are meaningful
//!   fleet-wide.
//! * **Stage totals** — time aggregated per `unit.*` stage (parse,
//!   cache_lookup, preprocess, tau_eval, serialize) across every unit,
//!   with the worst single span attributed to its unit.
//! * **Daemon utilization** — per-daemon busy time from `serve.unit`
//!   spans against batch wall-clock, joined with dispatch/steal/
//!   queue-wait attribution from the coordinator's `fleet.dispatch`
//!   events.
//! * **Refinement trajectories** — every greedy-refinement unit's
//!   committed descent, reconstructed step by step from the `refine.step`
//!   events the engine emits, so a campaign's "why did it land on these
//!   word-lengths" is answerable from the merged trace alone.
//!
//! The result renders as a single JSON line (`"kind":"trace_analysis"`,
//! machine-diffable, CI-artifact-friendly) and as a human text
//! breakdown. Exposed to operators as `psdacc-sched analyze --trace`
//! and to the bench harness as a library.

use std::collections::BTreeMap;
use std::collections::HashMap;

use crate::json::JsonWriter;
use crate::trace::{EventKind, Severity, SpanId, TraceEvent};

/// One hop of the critical path, root first.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalHop {
    /// Span name (`fleet.batch`, `fleet.unit`, `serve.unit`, `unit.*`).
    pub name: String,
    /// Unit id, when the hop is unit-scoped.
    pub unit: Option<u64>,
    /// Daemon the hop ran on (dispatch target for `fleet.unit`, merge
    /// stamp for daemon-side spans).
    pub daemon: Option<String>,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// Aggregated time for one `unit.*` stage across the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTotal {
    /// Stage span name (`unit.preprocess`, ...).
    pub name: String,
    /// Number of spans aggregated.
    pub count: u64,
    /// Sum of span durations, ns.
    pub total_ns: u64,
    /// Longest single span, ns.
    pub max_ns: u64,
    /// Unit id of that longest span, if unit-scoped.
    pub max_unit: Option<u64>,
}

/// Per-daemon work attribution for the batch.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonUtilization {
    /// Daemon address (merge stamp / dispatch field).
    pub addr: String,
    /// Units whose `serve.unit` span landed on this daemon.
    pub units: u64,
    /// Sum of `serve.unit` durations, ns.
    pub busy_ns: u64,
    /// `busy_ns` over batch wall-clock. Can exceed 1.0 when the daemon
    /// serves units concurrently.
    pub utilization: f64,
    /// `fleet.dispatch` events targeting this daemon.
    pub dispatches: u64,
    /// Dispatches flagged as work-stealing.
    pub steals: u64,
    /// Summed dispatch queue wait, ns.
    pub queue_wait_ns: u64,
}

/// One committed descent step of a greedy refinement, reconstructed
/// from a `refine.step` trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineStepView {
    /// Zero-based step index within the unit's trajectory.
    pub step: u64,
    /// Node whose word-length the step shrank.
    pub node: u64,
    /// Fractional bits at that node before the step.
    pub bits_before: i64,
    /// Fractional bits at that node after the step.
    pub bits_after: i64,
    /// Total noise power after committing the step.
    pub power: f64,
}

/// The refinement trajectory of one unit: its committed steps in
/// descent order, reconstructed from the merged trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineTrajectory {
    /// Unit id that ran the refinement (`None` for unit-less traces).
    pub unit: Option<u64>,
    /// Committed steps, ordered by step index.
    pub steps: Vec<RefineStepView>,
}

/// The full analysis of one merged fleet trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// Batch id of the analyzed trace.
    pub batch: String,
    /// Batch wall-clock (`fleet.batch` root duration), ns.
    pub wall_ns: u64,
    /// Units the coordinator round-tripped (`fleet.unit` span count).
    pub units: u64,
    /// Events at warn severity (daemon death, re-dispatch, fallback).
    pub warnings: u64,
    /// Critical path, root first.
    pub critical_path: Vec<CriticalHop>,
    /// Per-stage totals, heaviest first.
    pub stages: Vec<StageTotal>,
    /// Per-daemon attribution, sorted by address.
    pub daemons: Vec<DaemonUtilization>,
    /// Refinement trajectories, sorted by unit id.
    pub refinements: Vec<RefineTrajectory>,
}

/// Parses a JSONL trace (one [`TraceEvent`] per line; blank lines
/// skipped), reporting the first offending line on failure. An empty
/// trace — zero events — is its own named error rather than a
/// confusing "no root span" downstream: it usually means the run was
/// never traced, not that the merge was truncated.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        events.push(TraceEvent::parse(line).map_err(|e| format!("trace line {}: {e}", i + 1))?);
    }
    if events.is_empty() {
        return Err("trace line 1: empty trace — no events to analyze (was the run \
                    submitted with --trace, and is this the merged trace file?)"
            .to_string());
    }
    Ok(events)
}

fn field<'a>(ev: &'a TraceEvent, key: &str) -> Option<&'a str> {
    ev.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn span_dur(ev: &TraceEvent) -> Option<u64> {
    match ev.kind {
        EventKind::Span { dur_ns } => Some(dur_ns),
        EventKind::Event => None,
    }
}

fn hop(ev: &TraceEvent, dur_ns: u64, daemon: Option<String>) -> CriticalHop {
    CriticalHop { name: ev.name.clone(), unit: ev.unit, daemon, dur_ns }
}

/// Analyzes the events of one merged fleet trace.
///
/// Requires a `fleet.batch` root span — a daemon-local trace (or a
/// truncated merge) is rejected with an explanatory error rather than
/// silently producing a wall-clock-free report.
pub fn analyze(events: &[TraceEvent]) -> Result<TraceAnalysis, String> {
    let root = events
        .iter()
        .filter(|e| e.name == "fleet.batch")
        .find_map(|e| span_dur(e).map(|d| (e, d)))
        .ok_or_else(|| {
            "not a merged fleet trace: no fleet.batch root span (did you pass a \
             daemon-local trace, or was the batch evicted before the merge?)"
                .to_string()
        })?;
    let (root_ev, wall_ns) = root;

    // Index spans by parent for the descent, and collect the layers.
    let mut children: HashMap<SpanId, Vec<&TraceEvent>> = HashMap::new();
    let mut fleet_units: Vec<(&TraceEvent, u64)> = Vec::new();
    let mut serve_units: Vec<(&TraceEvent, u64)> = Vec::new();
    let mut stages: BTreeMap<&str, StageTotal> = BTreeMap::new();
    let mut daemons: BTreeMap<String, DaemonUtilization> = BTreeMap::new();
    let mut refinements: BTreeMap<Option<u64>, Vec<RefineStepView>> = BTreeMap::new();
    let mut warnings = 0u64;

    for ev in events {
        if ev.severity == Severity::Warn {
            warnings += 1;
        }
        let Some(dur) = span_dur(ev) else {
            if ev.name == "fleet.dispatch" {
                let addr = field(ev, "daemon").unwrap_or("unknown").to_string();
                let d = daemons.entry(addr.clone()).or_insert_with(|| blank_daemon(addr));
                d.dispatches += 1;
                if field(ev, "stolen") == Some("true") {
                    d.steals += 1;
                }
                d.queue_wait_ns +=
                    field(ev, "queue_wait_ns").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
            } else if ev.name == "refine.step" {
                if let Some(step) = refine_step(ev) {
                    refinements.entry(ev.unit).or_default().push(step);
                }
            }
            continue;
        };
        if let Some(parent) = ev.parent {
            children.entry(parent).or_default().push(ev);
        }
        match ev.name.as_str() {
            "fleet.unit" => fleet_units.push((ev, dur)),
            "serve.unit" => {
                serve_units.push((ev, dur));
                let addr = ev.daemon.clone().unwrap_or_else(|| "unknown".to_string());
                let d = daemons.entry(addr.clone()).or_insert_with(|| blank_daemon(addr));
                d.units += 1;
                d.busy_ns += dur;
            }
            name if name.starts_with("unit.") => {
                let s = stages.entry(&ev.name).or_insert_with(|| StageTotal {
                    name: ev.name.clone(),
                    count: 0,
                    total_ns: 0,
                    max_ns: 0,
                    max_unit: None,
                });
                s.count += 1;
                s.total_ns += dur;
                if dur > s.max_ns {
                    s.max_ns = dur;
                    s.max_unit = ev.unit;
                }
            }
            _ => {}
        }
    }

    // Critical path: root, last-finishing roundtrip (coordinator clock),
    // its daemon-side span, then longest-child descent.
    let mut critical_path = vec![hop(root_ev, wall_ns, None)];
    let last = fleet_units.iter().max_by_key(|(ev, dur)| (ev.ts_ns.saturating_add(*dur), *dur));
    if let Some(&(funit, fdur)) = last {
        let target_daemon = field(funit, "daemon").map(str::to_string);
        critical_path.push(hop(funit, fdur, target_daemon.clone()));
        let served = serve_units
            .iter()
            .filter(|(ev, _)| ev.unit == funit.unit)
            .max_by_key(|(ev, dur)| (ev.daemon == target_daemon, *dur));
        if let Some(&(sunit, sdur)) = served {
            critical_path.push(hop(sunit, sdur, sunit.daemon.clone()));
            let mut cursor = sunit.span;
            while let Some(next) = children
                .get(&cursor)
                .and_then(|kids| kids.iter().max_by_key(|k| span_dur(k).unwrap_or(0)))
            {
                let dur = span_dur(next).unwrap_or(0);
                critical_path.push(hop(next, dur, next.daemon.clone()));
                cursor = next.span;
            }
        }
    }

    for d in daemons.values_mut() {
        d.utilization = if wall_ns == 0 { 0.0 } else { d.busy_ns as f64 / wall_ns as f64 };
    }
    let mut stages: Vec<StageTotal> = stages.into_values().collect();
    stages.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then_with(|| a.name.cmp(&b.name)));
    // A merged trace interleaves daemons, so a unit's steps can arrive
    // out of order; the step index restores the descent order.
    let refinements: Vec<RefineTrajectory> = refinements
        .into_iter()
        .map(|(unit, mut steps)| {
            steps.sort_by_key(|s| s.step);
            RefineTrajectory { unit, steps }
        })
        .collect();

    Ok(TraceAnalysis {
        batch: root_ev.batch.clone(),
        wall_ns,
        units: fleet_units.len() as u64,
        warnings,
        critical_path,
        stages,
        daemons: daemons.into_values().collect(),
        refinements,
    })
}

/// Decodes one `refine.step` event; events missing a numeric field are
/// dropped rather than poisoning the whole analysis.
fn refine_step(ev: &TraceEvent) -> Option<RefineStepView> {
    Some(RefineStepView {
        step: field(ev, "step")?.parse().ok()?,
        node: field(ev, "node")?.parse().ok()?,
        bits_before: field(ev, "bits_before")?.parse().ok()?,
        bits_after: field(ev, "bits_after")?.parse().ok()?,
        power: field(ev, "power")?.parse().ok()?,
    })
}

fn blank_daemon(addr: String) -> DaemonUtilization {
    DaemonUtilization {
        addr,
        units: 0,
        busy_ns: 0,
        utilization: 0.0,
        dispatches: 0,
        steals: 0,
        queue_wait_ns: 0,
    }
}

/// Formats a nanosecond duration for the text report (`ns`/`us`/`ms`/`s`
/// with three significant-ish digits).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.1} us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

impl TraceAnalysis {
    fn pct(&self, dur_ns: u64) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            dur_ns as f64 / self.wall_ns as f64 * 100.0
        }
    }

    /// Renders the machine report as one JSON line
    /// (`"kind":"trace_analysis"`).
    pub fn to_json_line(&self) -> String {
        let hops: Vec<String> = self
            .critical_path
            .iter()
            .map(|h| {
                let mut w = JsonWriter::new();
                w.field_str("name", &h.name);
                if let Some(u) = h.unit {
                    w.field_u64("unit", u);
                }
                if let Some(d) = &h.daemon {
                    w.field_str("daemon", d);
                }
                w.field_u64("dur_ns", h.dur_ns);
                w.field_f64("pct", self.pct(h.dur_ns));
                w.finish()
            })
            .collect();
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| {
                let mut w = JsonWriter::new();
                w.field_str("name", &s.name);
                w.field_u64("count", s.count);
                w.field_u64("total_ns", s.total_ns);
                w.field_u64("max_ns", s.max_ns);
                if let Some(u) = s.max_unit {
                    w.field_u64("max_unit", u);
                }
                w.finish()
            })
            .collect();
        let daemons: Vec<String> = self
            .daemons
            .iter()
            .map(|d| {
                let mut w = JsonWriter::new();
                w.field_str("addr", &d.addr);
                w.field_u64("units", d.units);
                w.field_u64("busy_ns", d.busy_ns);
                w.field_f64("utilization", d.utilization);
                w.field_u64("dispatches", d.dispatches);
                w.field_u64("steals", d.steals);
                w.field_u64("queue_wait_ns", d.queue_wait_ns);
                w.finish()
            })
            .collect();
        let refinements: Vec<String> = self
            .refinements
            .iter()
            .map(|t| {
                let steps: Vec<String> = t
                    .steps
                    .iter()
                    .map(|s| {
                        let mut w = JsonWriter::new();
                        w.field_u64("step", s.step);
                        w.field_u64("node", s.node);
                        w.field_i64("bits_before", s.bits_before);
                        w.field_i64("bits_after", s.bits_after);
                        w.field_f64("power", s.power);
                        w.finish()
                    })
                    .collect();
                let mut w = JsonWriter::new();
                if let Some(u) = t.unit {
                    w.field_u64("unit", u);
                }
                w.field_raw("steps", &format!("[{}]", steps.join(",")));
                w.finish()
            })
            .collect();
        let mut w = JsonWriter::new();
        w.field_str("kind", "trace_analysis");
        w.field_str("batch", &self.batch);
        w.field_u64("wall_ns", self.wall_ns);
        w.field_u64("units", self.units);
        w.field_u64("warnings", self.warnings);
        w.field_raw("critical_path", &format!("[{}]", hops.join(",")));
        w.field_raw("stages", &format!("[{}]", stages.join(",")));
        w.field_raw("daemons", &format!("[{}]", daemons.join(",")));
        w.field_raw("refinements", &format!("[{}]", refinements.join(",")));
        w.finish()
    }

    /// Renders the human breakdown (multi-line text).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "batch {}: {} units, wall {}, {} warning(s)\n",
            self.batch,
            self.units,
            fmt_ns(self.wall_ns),
            self.warnings
        ));
        out.push_str("critical path (longest chain bounding wall-clock):\n");
        for (depth, h) in self.critical_path.iter().enumerate() {
            let mut label = h.name.clone();
            if let Some(u) = h.unit {
                label.push_str(&format!(" #{u}"));
            }
            if let Some(d) = &h.daemon {
                label.push_str(&format!(" @{d}"));
            }
            out.push_str(&format!(
                "  {:indent$}{label:<40} {:>10}  {:>5.1}%\n",
                "",
                fmt_ns(h.dur_ns),
                self.pct(h.dur_ns),
                indent = depth * 2,
            ));
        }
        if !self.refinements.is_empty() {
            out.push_str("refinement trajectories (committed greedy descent steps):\n");
            for t in &self.refinements {
                let unit = t.unit.map(|u| format!("unit {u}")).unwrap_or_else(|| "-".to_string());
                let final_power =
                    t.steps.last().map(|s| format!("{:.4e}", s.power)).unwrap_or_default();
                out.push_str(&format!(
                    "  {unit}: {} step(s), final power {final_power}\n",
                    t.steps.len()
                ));
                for s in &t.steps {
                    out.push_str(&format!(
                        "    step {:<3} node {:<4} {:>3} -> {:<3} bits  power {:.4e}\n",
                        s.step, s.node, s.bits_before, s.bits_after, s.power,
                    ));
                }
            }
        }
        out.push_str("stage totals (all units, heaviest first):\n");
        for s in &self.stages {
            let max_unit = s.max_unit.map(|u| format!(" (unit {u})")).unwrap_or_default();
            out.push_str(&format!(
                "  {:<20} count={:<4} total={:>10}  max={}{}\n",
                s.name,
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.max_ns),
                max_unit,
            ));
        }
        out.push_str("daemons:\n");
        for d in &self.daemons {
            out.push_str(&format!(
                "  {:<24} units={:<4} busy={:>10}  util={:>5.1}%  dispatches={} steals={} queue_wait={}\n",
                d.addr,
                d.units,
                fmt_ns(d.busy_ns),
                d.utilization * 100.0,
                d.dispatches,
                d.steals,
                fmt_ns(d.queue_wait_ns),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};

    #[allow(clippy::too_many_arguments)]
    fn span(
        name: &str,
        span: u64,
        parent: Option<u64>,
        ts_ns: u64,
        dur_ns: u64,
        unit: Option<u64>,
        daemon: Option<&str>,
        fields: Vec<(&str, &str)>,
    ) -> TraceEvent {
        TraceEvent {
            ts_ns,
            name: name.to_string(),
            kind: EventKind::Span { dur_ns },
            span: SpanId(span),
            parent: parent.map(SpanId),
            batch: "fix".to_string(),
            unit,
            daemon: daemon.map(str::to_string),
            severity: Severity::Info,
            fields: fields.into_iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        }
    }

    fn dispatch(unit: u64, daemon: &str, stolen: &str, wait: &str) -> TraceEvent {
        TraceEvent {
            ts_ns: 0,
            name: "fleet.dispatch".to_string(),
            kind: EventKind::Event,
            span: SpanId(900 + unit),
            parent: Some(SpanId(1)),
            batch: "fix".to_string(),
            unit: Some(unit),
            daemon: None,
            severity: Severity::Info,
            fields: vec![
                ("daemon".to_string(), daemon.to_string()),
                ("stolen".to_string(), stolen.to_string()),
                ("queue_wait_ns".to_string(), wait.to_string()),
            ],
        }
    }

    fn refine(unit: u64, step: u64, node: u64, bits: i64, power: &str) -> TraceEvent {
        TraceEvent {
            ts_ns: 0,
            name: "refine.step".to_string(),
            kind: EventKind::Event,
            span: SpanId(800 + 10 * unit + step),
            parent: Some(SpanId(11)),
            batch: "fix".to_string(),
            unit: Some(unit),
            daemon: Some("b".to_string()),
            severity: Severity::Info,
            fields: vec![
                ("step".to_string(), step.to_string()),
                ("node".to_string(), node.to_string()),
                ("bits_before".to_string(), bits.to_string()),
                ("bits_after".to_string(), (bits - 1).to_string()),
                ("predicted_delta".to_string(), "1e-9".to_string()),
                ("power".to_string(), power.to_string()),
            ],
        }
    }

    /// A two-daemon fixture with hand-computed answers: unit 1 on
    /// daemon `b` finishes last (coordinator end 700 vs 400) and its
    /// preprocess stage dominates, so the critical path must be
    /// fleet.batch -> fleet.unit#1 -> serve.unit#1@b -> unit.preprocess.
    /// Unit 1 also committed two refinement steps, merged out of order.
    fn fixture() -> Vec<TraceEvent> {
        let mut warn = dispatch(1, "b", "true", "75");
        warn.name = "fleet.redispatch".to_string();
        warn.severity = Severity::Warn;
        warn.span = SpanId(950);
        vec![
            span("fleet.batch", 1, None, 0, 1000, None, None, vec![]),
            span("fleet.unit", 2, Some(1), 100, 300, Some(0), None, vec![("daemon", "a")]),
            span("fleet.unit", 3, Some(1), 200, 500, Some(1), None, vec![("daemon", "b")]),
            span("serve.unit", 10, Some(1), 5, 250, Some(0), Some("a"), vec![]),
            span("serve.unit", 11, Some(1), 5, 450, Some(1), Some("b"), vec![]),
            span("unit.parse", 20, Some(10), 6, 5, Some(0), Some("a"), vec![]),
            span("unit.tau_eval", 21, Some(10), 12, 150, Some(0), Some("a"), vec![]),
            span("unit.parse", 30, Some(11), 6, 10, Some(1), Some("b"), vec![]),
            span("unit.cache_lookup", 31, Some(11), 17, 20, Some(1), Some("b"), vec![]),
            span("unit.preprocess", 32, Some(11), 38, 300, Some(1), Some("b"), vec![]),
            span("unit.tau_eval", 33, Some(11), 340, 100, Some(1), Some("b"), vec![]),
            span("unit.serialize", 34, Some(11), 441, 5, Some(1), Some("b"), vec![]),
            dispatch(0, "a", "false", "50"),
            dispatch(1, "b", "true", "75"),
            warn,
            // Merged out of order: the analyzer must restore step order.
            refine(1, 1, 7, 11, "2.5e-7"),
            refine(1, 0, 4, 12, "4.5e-7"),
        ]
    }

    #[test]
    fn analyzer_finds_the_hand_computed_critical_path() {
        let a = analyze(&fixture()).unwrap();
        assert_eq!(a.batch, "fix");
        assert_eq!(a.wall_ns, 1000);
        assert_eq!(a.units, 2);
        assert_eq!(a.warnings, 1);
        let path: Vec<(&str, Option<u64>, u64)> =
            a.critical_path.iter().map(|h| (h.name.as_str(), h.unit, h.dur_ns)).collect();
        assert_eq!(
            path,
            vec![
                ("fleet.batch", None, 1000),
                ("fleet.unit", Some(1), 500),
                ("serve.unit", Some(1), 450),
                ("unit.preprocess", Some(1), 300),
            ]
        );
        assert_eq!(a.critical_path[1].daemon.as_deref(), Some("b"), "dispatch-target daemon");
        assert_eq!(a.critical_path[2].daemon.as_deref(), Some("b"), "merge-stamp daemon");
    }

    #[test]
    fn analyzer_aggregates_stages_and_daemons() {
        let a = analyze(&fixture()).unwrap();
        let stages: Vec<(&str, u64, u64, u64, Option<u64>)> = a
            .stages
            .iter()
            .map(|s| (s.name.as_str(), s.count, s.total_ns, s.max_ns, s.max_unit))
            .collect();
        assert_eq!(
            stages,
            vec![
                ("unit.preprocess", 1, 300, 300, Some(1)),
                ("unit.tau_eval", 2, 250, 150, Some(0)),
                ("unit.cache_lookup", 1, 20, 20, Some(1)),
                ("unit.parse", 2, 15, 10, Some(1)),
                ("unit.serialize", 1, 5, 5, Some(1)),
            ]
        );
        assert_eq!(a.daemons.len(), 2);
        let a_d = &a.daemons[0];
        assert_eq!((a_d.addr.as_str(), a_d.units, a_d.busy_ns), ("a", 1, 250));
        assert!((a_d.utilization - 0.25).abs() < 1e-12);
        assert_eq!((a_d.dispatches, a_d.steals, a_d.queue_wait_ns), (1, 0, 50));
        let b_d = &a.daemons[1];
        assert_eq!((b_d.addr.as_str(), b_d.units, b_d.busy_ns), ("b", 1, 450));
        assert!((b_d.utilization - 0.45).abs() < 1e-12);
        assert_eq!((b_d.dispatches, b_d.steals, b_d.queue_wait_ns), (1, 1, 75));
    }

    #[test]
    fn reports_round_trip_through_jsonl_and_render_both_formats() {
        let jsonl: String =
            fixture().iter().map(|e| e.to_json_line() + "\n").collect::<String>() + "\n";
        let events = parse_trace(&jsonl).unwrap();
        let a = analyze(&events).unwrap();
        assert_eq!(a, analyze(&fixture()).unwrap(), "JSONL round trip is lossless");

        let line = a.to_json_line();
        assert!(!line.contains('\n'), "machine report is one line");
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("trace_analysis"));
        assert_eq!(v.get("wall_ns").and_then(Json::as_u64), Some(1000));
        assert_eq!(v.get("critical_path").and_then(Json::as_array).map(|a| a.len()), Some(4));
        assert_eq!(v.get("stages").and_then(Json::as_array).map(|a| a.len()), Some(5));
        assert_eq!(v.get("daemons").and_then(Json::as_array).map(|a| a.len()), Some(2));
        assert_eq!(v.get("refinements").and_then(Json::as_array).map(|a| a.len()), Some(1));

        let text = a.to_text();
        assert!(text.contains("unit.preprocess"));
        assert!(text.contains("@b"));
        assert!(text.contains("util= 45.0%"));
        assert!(text.contains("refinement trajectories"), "{text}");
        assert!(text.contains("unit 1: 2 step(s), final power 2.5000e-7"), "{text}");
    }

    #[test]
    fn reconstructs_refinement_trajectories_in_step_order() {
        let a = analyze(&fixture()).unwrap();
        assert_eq!(a.refinements.len(), 1);
        let t = &a.refinements[0];
        assert_eq!(t.unit, Some(1));
        let steps: Vec<(u64, u64, i64, i64)> =
            t.steps.iter().map(|s| (s.step, s.node, s.bits_before, s.bits_after)).collect();
        assert_eq!(
            steps,
            vec![(0, 4, 12, 11), (1, 7, 11, 10)],
            "out-of-order merge is restored to descent order"
        );
        assert_eq!(t.steps[0].power, 4.5e-7);
        assert_eq!(t.steps[1].power, 2.5e-7);

        // A step event with a missing numeric field is dropped, not fatal.
        let mut events = fixture();
        let mut broken = refine(0, 0, 1, 8, "1e-8");
        broken.fields.retain(|(k, _)| k != "node");
        events.push(broken);
        let a = analyze(&events).unwrap();
        assert_eq!(a.refinements.len(), 1, "the broken unit-0 event contributes nothing");
    }

    #[test]
    fn empty_traces_are_named_line_numbered_errors() {
        for text in ["", "\n", "  \n\n  \n"] {
            let err = parse_trace(text).unwrap_err();
            assert!(err.starts_with("trace line 1:"), "{err}");
            assert!(err.contains("empty trace"), "{err}");
        }
    }

    #[test]
    fn rejects_traces_without_a_fleet_root() {
        let daemon_only = vec![span("serve.unit", 10, None, 5, 250, Some(0), Some("a"), vec![])];
        let err = analyze(&daemon_only).unwrap_err();
        assert!(err.contains("no fleet.batch root"), "{err}");
    }

    #[test]
    fn parse_trace_points_at_the_offending_line() {
        let err = parse_trace("\n{\"ts_ns\":0}\n").unwrap_err();
        assert!(err.starts_with("trace line 2:"), "{err}");
    }

    #[test]
    fn fmt_ns_picks_readable_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.5 us");
        assert_eq!(fmt_ns(2_500_000), "2.5 ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21 s");
    }
}
