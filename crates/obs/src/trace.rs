//! Structured tracing: spans and events as single-line JSON (JSONL).
//!
//! # Trace format
//!
//! Each line is one [`TraceEvent`]:
//!
//! ```json
//! {"ts_ns":12345,"kind":"span","name":"serve.unit","span":"00c0ffee00000001",
//!  "parent":"00c0ffee00000000","dur_ns":678,"batch":"fleet-1a2b",
//!  "unit":4,"daemon":"127.0.0.1:7455","severity":"warn","fields":{"k":"v"}}
//! ```
//!
//! * `ts_ns` — start time in nanoseconds on the emitting process's
//!   monotonic clock (each process has its own epoch; ordering is only
//!   meaningful per process, parentage is meaningful fleet-wide).
//! * `kind` — `span` (has `dur_ns`) or `event` (instantaneous, no
//!   `dur_ns`).
//! * `span` / `parent` — 16-hex-digit ids. Ids embed a per-process seed
//!   so daemon- and coordinator-generated ids never collide in a merged
//!   trace.
//! * `batch` — the fleet batch id the event belongs to.
//! * `unit`, `daemon`, `severity`, `fields` — optional context. A span is
//!   written once, on completion (no separate begin/end records), which
//!   keeps a trace a set of lines rather than a stateful stream.
//!
//! Timestamps and durations must stay below 2^53 ns (≈ 104 days of
//! process uptime) to round-trip exactly through JSON numbers; the
//! serializer clamps to that bound.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::{self, Json, JsonWriter};

/// Largest timestamp/duration that survives a JSON `f64` round trip.
pub const MAX_TS_NS: u64 = (1u64 << 53) - 1;

/// A span/event id: 64 bits, rendered as 16 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The 16-hex-digit wire form.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the wire form (any-length hex accepted).
    pub fn from_hex(s: &str) -> Option<SpanId> {
        u64::from_str_radix(s, 16).ok().map(SpanId)
    }
}

/// `span` (with duration) or `event` (instantaneous).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span with its duration in nanoseconds.
    Span {
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// An instantaneous event.
    Event,
}

/// Event severity; `Info` is the default and is omitted on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Severity {
    /// Normal operation.
    #[default]
    Info,
    /// Something degraded (daemon death, re-dispatch, fallback).
    Warn,
}

/// One trace line. See the module docs for the wire schema.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Start time, ns on the emitting process's monotonic clock.
    pub ts_ns: u64,
    /// Span/event name, dot-scoped (`fleet.batch`, `serve.unit`, ...).
    pub name: String,
    /// Span vs event, with the span duration.
    pub kind: EventKind,
    /// This record's id.
    pub span: SpanId,
    /// Parent span id, if any.
    pub parent: Option<SpanId>,
    /// Owning batch id.
    pub batch: String,
    /// Unit id within the batch, if unit-scoped.
    pub unit: Option<u64>,
    /// Emitting daemon address (stamped at merge time).
    pub daemon: Option<String>,
    /// Severity (`Info` omitted on the wire).
    pub severity: Severity,
    /// Free-form string key/value context, in emission order.
    pub fields: Vec<(String, String)>,
}

impl TraceEvent {
    /// Serializes to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = JsonWriter::new();
        w.field_u64("ts_ns", self.ts_ns.min(MAX_TS_NS));
        w.field_str(
            "kind",
            match self.kind {
                EventKind::Span { .. } => "span",
                EventKind::Event => "event",
            },
        );
        w.field_str("name", &self.name);
        w.field_str("span", &self.span.to_hex());
        if let Some(parent) = self.parent {
            w.field_str("parent", &parent.to_hex());
        }
        if let EventKind::Span { dur_ns } = self.kind {
            w.field_u64("dur_ns", dur_ns.min(MAX_TS_NS));
        }
        w.field_str("batch", &self.batch);
        if let Some(unit) = self.unit {
            w.field_u64("unit", unit.min(MAX_TS_NS));
        }
        if let Some(daemon) = &self.daemon {
            w.field_str("daemon", daemon);
        }
        if self.severity == Severity::Warn {
            w.field_str("severity", "warn");
        }
        if !self.fields.is_empty() {
            let mut fw = JsonWriter::new();
            for (k, v) in &self.fields {
                fw.field_str(k, v);
            }
            w.field_raw("fields", &fw.finish());
        }
        w.finish()
    }

    /// Parses one trace line; the exact inverse of
    /// [`TraceEvent::to_json_line`] (proptested as a fixpoint).
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed line.
    pub fn parse(line: &str) -> Result<TraceEvent, String> {
        Self::from_json(&json::parse(line)?)
    }

    /// Parses an already-parsed JSON value — the shape a `trace` protocol
    /// reply carries inside its `events` array.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed value.
    pub fn from_json(v: &Json) -> Result<TraceEvent, String> {
        let ts_ns = v.get("ts_ns").and_then(Json::as_u64).ok_or("missing ts_ns")?;
        let name = v.get("name").and_then(Json::as_str).ok_or("missing name")?.to_string();
        let span = v
            .get("span")
            .and_then(Json::as_str)
            .and_then(SpanId::from_hex)
            .ok_or("missing span id")?;
        let kind = match v.get("kind").and_then(Json::as_str) {
            Some("span") => EventKind::Span {
                dur_ns: v.get("dur_ns").and_then(Json::as_u64).ok_or("span without dur_ns")?,
            },
            Some("event") => EventKind::Event,
            other => return Err(format!("bad kind {other:?}")),
        };
        let parent = match v.get("parent") {
            Some(p) => Some(p.as_str().and_then(SpanId::from_hex).ok_or("bad parent id")?),
            None => None,
        };
        let batch = v.get("batch").and_then(Json::as_str).ok_or("missing batch")?.to_string();
        let unit = match v.get("unit") {
            Some(u) => Some(u.as_u64().ok_or("bad unit id")?),
            None => None,
        };
        let daemon = v.get("daemon").and_then(Json::as_str).map(str::to_string);
        let severity = match v.get("severity").and_then(Json::as_str) {
            Some("warn") => Severity::Warn,
            _ => Severity::Info,
        };
        let fields = match v.get("fields") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, val)| {
                    val.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("non-string field `{k}`"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("fields is not an object".to_string()),
            None => Vec::new(),
        };
        Ok(TraceEvent { ts_ns, name, kind, span, parent, batch, unit, daemon, severity, fields })
    }
}

/// A span that has started but not yet completed. Plain data — it may be
/// ended from a different thread than it was started on.
#[derive(Debug)]
pub struct OpenSpan {
    /// The span's id (usable as a parent for children started meanwhile).
    pub id: SpanId,
    name: String,
    parent: Option<SpanId>,
    unit: Option<u64>,
    start_ns: u64,
}

/// A per-batch trace collector. Disabled tracers make every call a cheap
/// no-op (one branch), which is how observability stays out of the hot
/// path when not requested.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    batch: String,
    epoch: Instant,
    next: AtomicU64,
    events: Mutex<Vec<TraceEvent>>,
}

impl Tracer {
    /// An enabled tracer for `batch`. Span ids are seeded from wall-clock
    /// nanoseconds and the pid so ids from different processes (daemons
    /// vs coordinator) never collide in a merged trace.
    pub fn new(batch: &str) -> Tracer {
        let wall = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let seed = wall ^ (u64::from(std::process::id()) << 32) | 1;
        Tracer {
            enabled: true,
            batch: batch.to_string(),
            epoch: Instant::now(),
            next: AtomicU64::new(seed),
            events: Mutex::new(Vec::new()),
        }
    }

    /// A disabled tracer: every recording call is a no-op.
    pub fn disabled() -> Tracer {
        Tracer {
            enabled: false,
            batch: String::new(),
            epoch: Instant::now(),
            next: AtomicU64::new(1),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The batch id this tracer collects for.
    pub fn batch(&self) -> &str {
        &self.batch
    }

    /// Nanoseconds since this tracer's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u128::from(MAX_TS_NS)) as u64
    }

    /// A fresh id (also used by callers that pre-allocate parent ids).
    pub fn next_id(&self) -> SpanId {
        SpanId(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Starts a span; `None` when disabled.
    pub fn start(&self, name: &str, parent: Option<SpanId>, unit: Option<u64>) -> Option<OpenSpan> {
        if !self.enabled {
            return None;
        }
        Some(OpenSpan {
            id: self.next_id(),
            name: name.to_string(),
            parent,
            unit,
            start_ns: self.now_ns(),
        })
    }

    /// Completes a span (no-op for `None`, so call sites stay branchless).
    pub fn end(&self, span: Option<OpenSpan>) {
        self.end_with(span, Vec::new());
    }

    /// Completes a span with extra context fields.
    pub fn end_with(&self, span: Option<OpenSpan>, fields: Vec<(String, String)>) {
        let Some(span) = span else { return };
        let dur_ns = self.now_ns().saturating_sub(span.start_ns);
        self.push(TraceEvent {
            ts_ns: span.start_ns,
            name: span.name,
            kind: EventKind::Span { dur_ns },
            span: span.id,
            parent: span.parent,
            batch: self.batch.clone(),
            unit: span.unit,
            daemon: None,
            severity: Severity::Info,
            fields,
        });
    }

    /// Records a span from externally measured times — used where the
    /// duration was measured by existing instrumentation (e.g. a
    /// preprocessing build's `tau_pp`) rather than by this tracer.
    /// Returns the span's id when enabled.
    pub fn span_at(
        &self,
        name: &str,
        parent: Option<SpanId>,
        unit: Option<u64>,
        start_ns: u64,
        dur_ns: u64,
        fields: Vec<(String, String)>,
    ) -> Option<SpanId> {
        if !self.enabled {
            return None;
        }
        let id = self.next_id();
        self.push(TraceEvent {
            ts_ns: start_ns,
            name: name.to_string(),
            kind: EventKind::Span { dur_ns },
            span: id,
            parent,
            batch: self.batch.clone(),
            unit,
            daemon: None,
            severity: Severity::Info,
            fields,
        });
        Some(id)
    }

    /// Records an instantaneous event.
    pub fn event(
        &self,
        name: &str,
        severity: Severity,
        parent: Option<SpanId>,
        unit: Option<u64>,
        fields: Vec<(String, String)>,
    ) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent {
            ts_ns: self.now_ns(),
            name: name.to_string(),
            kind: EventKind::Event,
            span: self.next_id(),
            parent,
            batch: self.batch.clone(),
            unit,
            daemon: None,
            severity,
            fields,
        });
    }

    /// Appends a pre-built event (merging daemon-side traces).
    pub fn push(&self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        self.events.lock().expect("trace lock").push(event);
    }

    /// A copy of every event recorded so far, in emission order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace lock").clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace lock").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A bounded ring of per-batch tracers, newest last — a daemon keeps the
/// last few batches' traces so the coordinator can fetch them after the
/// batch completes.
#[derive(Debug)]
pub struct TraceStore {
    batches: Mutex<VecDeque<Arc<Tracer>>>,
    cap: usize,
    dropped_batches: AtomicU64,
    dropped_events: AtomicU64,
}

/// Point-in-time retention accounting for a [`TraceStore`] — what the
/// daemon still holds versus what eviction has already cost, so an
/// operator fetching an incomplete trace can see *that* (and how much)
/// was dropped rather than guessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStoreStats {
    /// Retention bound (batches).
    pub cap: usize,
    /// Batches currently retained.
    pub batches: usize,
    /// Events across all retained batches.
    pub events_retained: usize,
    /// Batches evicted over the store's lifetime.
    pub batches_dropped: u64,
    /// Events lost with those evictions.
    pub events_dropped: u64,
}

impl TraceStore {
    /// A store retaining at most `cap` batches.
    pub fn new(cap: usize) -> TraceStore {
        TraceStore {
            batches: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
            dropped_batches: AtomicU64::new(0),
            dropped_events: AtomicU64::new(0),
        }
    }

    /// Registers (or returns the existing) tracer for `batch`.
    pub fn create(&self, batch: &str) -> Arc<Tracer> {
        let mut ring = self.batches.lock().expect("trace store lock");
        if let Some(t) = ring.iter().find(|t| t.batch() == batch) {
            return Arc::clone(t);
        }
        let tracer = Arc::new(Tracer::new(batch));
        if ring.len() == self.cap {
            if let Some(evicted) = ring.pop_front() {
                self.dropped_batches.fetch_add(1, Ordering::Relaxed);
                self.dropped_events.fetch_add(evicted.len() as u64, Ordering::Relaxed);
            }
        }
        ring.push_back(Arc::clone(&tracer));
        tracer
    }

    /// Looks up the tracer for `batch`, if still retained.
    pub fn get(&self, batch: &str) -> Option<Arc<Tracer>> {
        let ring = self.batches.lock().expect("trace store lock");
        ring.iter().find(|t| t.batch() == batch).map(Arc::clone)
    }

    /// Retention accounting (see [`TraceStoreStats`]).
    pub fn stats(&self) -> TraceStoreStats {
        let ring = self.batches.lock().expect("trace store lock");
        TraceStoreStats {
            cap: self.cap,
            batches: ring.len(),
            events_retained: ring.iter().map(|t| t.len()).sum(),
            batches_dropped: self.dropped_batches.load(Ordering::Relaxed),
            events_dropped: self.dropped_events.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_lines_round_trip() {
        let e = TraceEvent {
            ts_ns: 12345,
            name: "serve.unit".to_string(),
            kind: EventKind::Span { dur_ns: 678 },
            span: SpanId(0x00c0_ffee_0000_0001),
            parent: Some(SpanId(7)),
            batch: "fleet-1a2b".to_string(),
            unit: Some(4),
            daemon: Some("127.0.0.1:7455".to_string()),
            severity: Severity::Warn,
            fields: vec![("cache_hit".to_string(), "true".to_string())],
        };
        let line = e.to_json_line();
        assert_eq!(TraceEvent::parse(&line).unwrap(), e);
        assert_eq!(TraceEvent::parse(&line).unwrap().to_json_line(), line, "fixpoint");
    }

    #[test]
    fn optional_fields_stay_absent() {
        let e = TraceEvent {
            ts_ns: 0,
            name: "e".to_string(),
            kind: EventKind::Event,
            span: SpanId(1),
            parent: None,
            batch: String::new(),
            unit: None,
            daemon: None,
            severity: Severity::Info,
            fields: Vec::new(),
        };
        let line = e.to_json_line();
        for absent in ["parent", "dur_ns", "unit", "daemon", "severity", "fields"] {
            assert!(!line.contains(absent), "{line}");
        }
        assert_eq!(TraceEvent::parse(&line).unwrap(), e);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(TraceEvent::parse("{}").is_err());
        assert!(TraceEvent::parse("not json").is_err());
        // A span without a duration.
        let line = r#"{"ts_ns":1,"kind":"span","name":"x","span":"01","batch":"b"}"#;
        assert!(TraceEvent::parse(line).unwrap_err().contains("dur_ns"));
    }

    #[test]
    fn tracer_records_spans_and_events_in_order() {
        let t = Tracer::new("b1");
        let root = t.start("root", None, None);
        let root_id = root.as_ref().unwrap().id;
        let child = t.start("child", Some(root_id), Some(3));
        t.end_with(child, vec![("k".to_string(), "v".to_string())]);
        t.event("steal", Severity::Info, Some(root_id), Some(3), Vec::new());
        t.end(root);
        let events = t.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "child");
        assert_eq!(events[0].parent, Some(root_id));
        assert_eq!(events[1].kind, EventKind::Event);
        assert_eq!(events[2].name, "root");
        assert!(matches!(events[2].kind, EventKind::Span { .. }));
        // Every line parses back to itself.
        for e in &events {
            assert_eq!(&TraceEvent::parse(&e.to_json_line()).unwrap(), e);
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let span = t.start("x", None, None);
        assert!(span.is_none());
        t.end(span);
        t.event("e", Severity::Warn, None, None, Vec::new());
        assert!(t.span_at("s", None, None, 0, 1, Vec::new()).is_none());
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn trace_store_evicts_oldest_batch() {
        let store = TraceStore::new(2);
        let a = store.create("a");
        assert!(Arc::ptr_eq(&a, &store.create("a")), "same batch, same tracer");
        a.event("warm", Severity::Info, None, None, Vec::new());
        a.event("warm2", Severity::Info, None, None, Vec::new());
        store.create("b");
        let before = store.stats();
        assert_eq!(before.cap, 2);
        assert_eq!(before.batches, 2);
        assert_eq!(before.events_retained, 2);
        assert_eq!(before.batches_dropped, 0);
        assert_eq!(before.events_dropped, 0);
        store.create("c");
        assert!(store.get("a").is_none(), "oldest evicted");
        assert!(store.get("b").is_some());
        assert!(store.get("c").is_some());
        let after = store.stats();
        assert_eq!(after.batches, 2);
        assert_eq!(after.events_retained, 0, "surviving batches are empty");
        assert_eq!(after.batches_dropped, 1);
        assert_eq!(after.events_dropped, 2, "eviction accounts the lost events");
    }
}
