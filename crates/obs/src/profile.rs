//! Hierarchical self-profiler: scoped frames aggregated into a call tree.
//!
//! The flat stage timers in [`crate::stage`] answer *how long* a stage
//! took; this module answers *where inside it* the time went. A harness
//! installs one process-global [`Profiler`], and instrumented code opens
//! scoped [`frame`]s. Each thread keeps its own frame stack; a frame's
//! path is the `;`-joined chain of open frame names on that thread
//! (`preprocess;multirate;kernels;region[1/2];source[3]`), and on exit
//! the guard folds (count, total ns, self ns) into a process-wide call
//! tree keyed by path. `self ns` is total minus time attributed to child
//! frames, so the hotspot ranking points at the code that actually burns
//! the cycles, not just the roots above it.
//!
//! The install contract is the same first-install-wins scheme as
//! [`crate::stage::install`]: the first [`install`] call wins for the
//! process lifetime, later calls return `false` and leave the original in
//! place, and when nothing is installed every [`frame`] call is a single
//! relaxed atomic load returning `None` — no `Instant::now()`, no
//! allocation, no lock. Profiling is observational only: it never feeds
//! back into evaluation, so profiled and unprofiled runs are bit-identical
//! (asserted end-to-end by the engine's profile tests and the
//! `psdacc-engine profile` subcommand itself).
//!
//! Snapshots render three ways: a ranked hotspot table
//! ([`ProfileSnapshot::to_text`]), a canonical `"kind":"profile"` JSON
//! line ([`ProfileSnapshot::to_json_line`]), and folded-stack lines
//! (`root;child;leaf <self_ns>`, [`ProfileSnapshot::to_folded`]) directly
//! consumable by standard flamegraph tooling.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::analyze::fmt_ns;
use crate::json::JsonWriter;

/// Separator between frame names in a path. Frame names must not contain
/// it (or whitespace/newlines — the folded grammar is line- and
/// space-delimited); [`frame`] sanitizes offending characters to `_`.
pub const PATH_SEPARATOR: char = ';';

// ---------------------------------------------------------------------------
// Aggregated call tree
// ---------------------------------------------------------------------------

/// Per-path aggregate: how many times the frame closed, total wall time,
/// and self time (total minus time inside child frames).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct FrameTotals {
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

/// The process-wide aggregation target for scoped frames.
///
/// Threads record into it through the global installed via [`install`];
/// harnesses read it back with [`Profiler::snapshot`] (non-destructive)
/// or [`Profiler::take`] (snapshot + reset, for per-probe dumps).
#[derive(Debug, Default)]
pub struct Profiler {
    frames: Mutex<BTreeMap<String, FrameTotals>>,
}

impl Profiler {
    /// An empty profiler, ready to be installed.
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&self, path: &str, total_ns: u64, self_ns: u64) {
        let mut frames = self.frames.lock().unwrap();
        let cell = match frames.get_mut(path) {
            Some(cell) => cell,
            None => frames.entry(path.to_string()).or_default(),
        };
        cell.count += 1;
        cell.total_ns = cell.total_ns.saturating_add(total_ns);
        cell.self_ns = cell.self_ns.saturating_add(self_ns);
    }

    /// A point-in-time copy of the aggregated call tree.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let frames = self.frames.lock().unwrap();
        ProfileSnapshot {
            frames: frames
                .iter()
                .map(|(path, totals)| ProfileFrame {
                    path: path.clone(),
                    count: totals.count,
                    total_ns: totals.total_ns,
                    self_ns: totals.self_ns,
                })
                .collect(),
        }
    }

    /// Snapshot and reset, so consecutive probes profile independently.
    pub fn take(&self) -> ProfileSnapshot {
        let mut frames = self.frames.lock().unwrap();
        let taken = std::mem::take(&mut *frames);
        drop(frames);
        ProfileSnapshot {
            frames: taken
                .into_iter()
                .map(|(path, totals)| ProfileFrame {
                    path,
                    count: totals.count,
                    total_ns: totals.total_ns,
                    self_ns: totals.self_ns,
                })
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Global install (first-install-wins, mirroring stage.rs)
// ---------------------------------------------------------------------------

static PROFILER: OnceLock<Arc<Profiler>> = OnceLock::new();
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Installs the process-global profiler. **First install wins**: later
/// calls return `false` and leave the original in place for the process
/// lifetime (there is no uninstall). This is the same contract as
/// [`crate::stage::install`]; when several harness layers race, exactly
/// one `install` returns `true`, and every subsequent frame from any
/// thread aggregates into that winner.
pub fn install(profiler: Arc<Profiler>) -> bool {
    let won = PROFILER.set(profiler).is_ok();
    if won {
        INSTALLED.store(true, Ordering::Release);
    }
    won
}

/// Whether a profiler is installed (one relaxed load — the hot-path
/// guard).
pub fn enabled() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// The installed profiler, if any.
pub fn profiler() -> Option<&'static Arc<Profiler>> {
    if enabled() {
        PROFILER.get()
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Scoped frames (thread-local stack + RAII guards)
// ---------------------------------------------------------------------------

struct OpenFrame {
    path: String,
    start: Instant,
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<OpenFrame>> = const { RefCell::new(Vec::new()) };
}

/// An open profiling frame; closing (dropping) it records the frame into
/// the installed [`Profiler`]. Guards are strictly scope-shaped: they are
/// `!Send` and must drop in LIFO order on the thread that opened them,
/// which Rust's drop order guarantees for the intended
/// `let _frame = profile::frame("name");` usage.
#[must_use = "a profiling frame closes when the guard drops; an unbound guard closes immediately"]
pub struct FrameGuard {
    _not_send: PhantomData<*const ()>,
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c == PATH_SEPARATOR || c.is_whitespace() { '_' } else { c }).collect()
}

fn enter(name: &str) -> FrameGuard {
    let name = if name.contains(|c: char| c == PATH_SEPARATOR || c.is_whitespace()) {
        sanitize(name)
    } else {
        name.to_string()
    };
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{}{PATH_SEPARATOR}{name}", parent.path),
            None => name,
        };
        stack.push(OpenFrame { path, start: Instant::now(), child_ns: 0 });
    });
    FrameGuard { _not_send: PhantomData }
}

/// Opens a scoped frame named `name` under the calling thread's current
/// frame path. Returns `None` (cost: one relaxed load) when no profiler
/// is installed, so the idiomatic call site is just
/// `let _frame = profile::frame("solve");`.
pub fn frame(name: &str) -> Option<FrameGuard> {
    if !enabled() {
        return None;
    }
    Some(enter(name))
}

/// Like [`frame`] but with a lazily built name: the closure only runs
/// when a profiler is installed, so dynamic names
/// (`format!("node[{i}]")`) cost nothing on the uninstalled path.
pub fn frame_with(name: impl FnOnce() -> String) -> Option<FrameGuard> {
    if !enabled() {
        return None;
    }
    Some(enter(&name()))
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let Some(open) = stack.pop() else {
                return;
            };
            let total_ns = u64::try_from(open.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let self_ns = total_ns.saturating_sub(open.child_ns);
            if let Some(parent) = stack.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(total_ns);
            }
            drop(stack);
            if let Some(profiler) = profiler() {
                profiler.record(&open.path, total_ns, self_ns);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Snapshot + renderings
// ---------------------------------------------------------------------------

/// One aggregated frame in a [`ProfileSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileFrame {
    /// `;`-joined chain of frame names from root to this frame.
    pub path: String,
    /// How many times the frame closed.
    pub count: u64,
    /// Total wall time across all closes, in nanoseconds.
    pub total_ns: u64,
    /// Total minus time attributed to child frames, in nanoseconds.
    pub self_ns: u64,
}

impl ProfileFrame {
    /// The frame's own name (last path segment).
    pub fn name(&self) -> &str {
        self.path.rsplit(PATH_SEPARATOR).next().unwrap_or(&self.path)
    }
}

/// A point-in-time copy of a [`Profiler`]'s call tree, path-sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Aggregated frames, sorted by path.
    pub frames: Vec<ProfileFrame>,
}

impl ProfileSnapshot {
    /// True when no frame closed while the profiler was collecting.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total profiled wall time: the sum of every frame's self time,
    /// which equals the summed totals of the root frames.
    pub fn total_self_ns(&self) -> u64 {
        self.frames.iter().map(|f| f.self_ns).sum()
    }

    /// Frames ranked by self time, descending (ties broken by path so
    /// the ordering is deterministic).
    pub fn hotspots(&self) -> Vec<&ProfileFrame> {
        let mut ranked: Vec<&ProfileFrame> = self.frames.iter().collect();
        ranked.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
        ranked
    }

    /// The ranked hotspot table: one row per frame path, ordered by self
    /// time descending, with self share of the profiled total.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("profile: no frames recorded\n");
            return out;
        }
        let total = self.total_self_ns().max(1);
        out.push_str(&format!(
            "profile: {} across {} frame paths\n",
            fmt_ns(self.total_self_ns()),
            self.frames.len()
        ));
        out.push_str(&format!(
            "  {:>9} {:>6}  {:>9} {:>9}  frame\n",
            "self", "self%", "total", "count"
        ));
        for frame in self.hotspots() {
            let share = frame.self_ns as f64 / total as f64 * 100.0;
            out.push_str(&format!(
                "  {:>9} {:>5.1}%  {:>9} {:>9}  {}\n",
                fmt_ns(frame.self_ns),
                share,
                fmt_ns(frame.total_ns),
                frame.count,
                frame.path
            ));
        }
        out
    }

    /// The canonical `"kind":"profile"` JSON line: top-level totals plus
    /// every frame (hotspot-ranked) with path/count/total_ns/self_ns.
    pub fn to_json_line(&self) -> String {
        let mut w = JsonWriter::new();
        w.field_str("kind", "profile");
        w.field_u64("total_self_ns", self.total_self_ns());
        w.field_usize("frames", self.frames.len());
        let mut rows = String::from("[");
        for (i, frame) in self.hotspots().iter().enumerate() {
            if i > 0 {
                rows.push(',');
            }
            let mut fw = JsonWriter::new();
            fw.field_str("path", &frame.path);
            fw.field_u64("count", frame.count);
            fw.field_u64("total_ns", frame.total_ns);
            fw.field_u64("self_ns", frame.self_ns);
            rows.push_str(&fw.finish());
        }
        rows.push(']');
        w.field_raw("hotspots", &rows);
        w.finish()
    }

    /// Folded-stack lines (`root;child;leaf <self_ns>`, path-sorted, one
    /// per frame path) — the input grammar of standard flamegraph
    /// tooling (`flamegraph.pl`, inferno, speedscope).
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for frame in &self.frames {
            out.push_str(&format!("{} {}\n", frame.path, frame.self_ns));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    // One test process shares the global profiler, so lifecycle behaviors
    // are exercised in a single body ordered around one install (the
    // concurrent-install race lives in the `install_race` integration
    // test, which owns its own process).
    #[test]
    fn profiler_lifecycle() {
        // Before install: frames cost one load and return None.
        assert!(!enabled());
        assert!(frame("nope").is_none());
        let mut built = false;
        assert!(frame_with(|| {
            built = true;
            String::from("nope")
        })
        .is_none());
        assert!(!built, "frame_with must not build the name when uninstalled");

        let profiler = Arc::new(Profiler::new());
        assert!(install(Arc::clone(&profiler)));
        assert!(enabled());

        {
            let _outer = frame("outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = frame_with(|| String::from("inner"));
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let snap = profiler.snapshot();
        let paths: Vec<&str> = snap.frames.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(paths, ["outer", "outer;inner"]);
        let outer = &snap.frames[0];
        let inner = &snap.frames[1];
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(inner.total_ns <= outer.total_ns);
        // self + child == total by construction.
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
        assert_eq!(inner.self_ns, inner.total_ns);
        assert_eq!(snap.total_self_ns(), outer.total_ns);

        // Renderings agree on content and grammar.
        let text = snap.to_text();
        assert!(text.contains("outer;inner"));
        let folded = snap.to_folded();
        for line in folded.lines() {
            let (path, ns) = line.rsplit_once(' ').expect("folded line has a space");
            assert!(!path.is_empty() && !path.contains(' '));
            ns.parse::<u64>().expect("folded value is a u64");
        }
        let json = snap.to_json_line();
        assert!(json.starts_with("{\"kind\":\"profile\""));
        assert!(json.contains("\"path\":\"outer;inner\""));

        // Second install loses; the original keeps receiving.
        assert!(!install(Arc::new(Profiler::new())));
        drop(frame("after"));
        assert_eq!(profiler.snapshot().frames.iter().filter(|f| f.path == "after").count(), 1);

        // take() drains; a fresh snapshot is empty.
        let taken = profiler.take();
        assert!(!taken.is_empty());
        assert!(profiler.snapshot().is_empty());
        assert_eq!(profiler.snapshot().to_text(), "profile: no frames recorded\n");

        // Names that would break the `;`-joined path or the space- and
        // line-delimited folded grammar are sanitized on entry.
        drop(frame("bad;name with\nstuff"));
        let snap = profiler.take();
        assert!(snap.frames.iter().any(|f| f.path == "bad_name_with_stuff"), "{snap:?}");

        // Frames from every thread aggregate into the one installed tree.
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _root = frame("worker");
                    let _leaf = frame("leaf");
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = profiler.snapshot();
        let worker = snap.frames.iter().find(|f| f.path == "worker").unwrap();
        let leaf = snap.frames.iter().find(|f| f.path == "worker;leaf").unwrap();
        assert_eq!(worker.count, 4);
        assert_eq!(leaf.count, 4);
    }
}
