//! The unified metrics registry: named counters, gauges, and log-bucketed
//! duration histograms, with two expositions — a canonical single-line
//! JSON object (machine-diffable, key-sorted) and a Prometheus-style text
//! format (scrapeable).
//!
//! # Naming scheme
//!
//! Metric names are `snake_case`, prefixed by the owning layer
//! (`serve_`, `sched_`, `engine_`, `store_`, `sfg_`, `core_`), suffixed
//! by unit or kind: `_total` for monotone counters, `_ns` for duration
//! histograms, bare for gauges. A single label may be appended in braces,
//! `name{key=value}` — e.g. `serve_latency_ns{verb=evaluate}`. The label
//! is part of the registry key; the Prometheus exposition re-renders it
//! as a proper label pair.
//!
//! # Histogram buckets and quantiles
//!
//! Buckets are log-spaced in **nanoseconds**: bucket `i` counts
//! observations in `[2^i, 2^(i+1))` ns (bucket 0 also absorbs 0–1 ns, the
//! last bucket absorbs everything from ~39 h up). 48 buckets cover the
//! whole range this stack sees, from sub-µs stage timers to multi-second
//! preprocessing builds. Derived quantiles use the **bucket-upper-bound
//! convention**: `quantile(q)` returns the upper bound `2^(i+1)` of the
//! bucket holding the `ceil(q·count)`-th observation — a conservative
//! overestimate by at most 2×, and stable under merging.
//!
//! All cells are relaxed atomics: writers are hot paths, readers are
//! `stats`/`metrics` verbs, and eventual consistency is all either needs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json::JsonWriter;

/// Number of log-spaced histogram buckets (`2^47` ns ≈ 39 h top bucket).
pub const NUM_BUCKETS: usize = 48;

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (pool occupancy, cache
/// entries, active connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log-bucketed duration histogram (see the module docs for the bucket
/// and quantile conventions).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
    // Exact extremes: bucket upper bounds overstate the tails by up to 2x
    // at low counts, so the true min/max are tracked in their own cells
    // (`u64::MAX`/`0` sentinels while empty, normalized on snapshot).
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

/// An owned point-in-time copy of a [`Histogram`], for quantile math and
/// rendering without holding the live cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; NUM_BUCKETS],
    /// Total observation count.
    pub count: u64,
    /// Sum of all observed durations, in nanoseconds (saturating).
    pub total_ns: u64,
    /// Exact smallest observation in nanoseconds (0 when empty).
    pub min_ns: u64,
    /// Exact largest observation in nanoseconds (0 when empty).
    pub max_ns: u64,
}

/// Maps a nanosecond value to its bucket index.
fn bucket_index(ns: u64) -> usize {
    (ns.max(1).ilog2() as usize).min(NUM_BUCKETS - 1)
}

impl Histogram {
    /// Records one duration.
    pub fn record(&self, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.record_ns(ns);
    }

    /// Records one observation given directly in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes an owned snapshot of the current cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        // Normalize the empty-histogram sentinel (and the transient
        // between a writer's bucket update and its min update) to 0.
        let min_raw = self.min_ns.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            min_ns: if min_raw == u64::MAX { 0 } else { min_raw },
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

impl HistogramSnapshot {
    /// The `q`-quantile (0 < q ≤ 1) in nanoseconds, by the bucket-
    /// upper-bound convention; `None` for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(upper_bound_ns(i));
            }
        }
        Some(upper_bound_ns(NUM_BUCKETS - 1))
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) in nanoseconds with **linear
    /// sub-bucket interpolation**: the rank is placed inside its bucket by
    /// the midpoint convention (`rank - 0.5` of the bucket's occupants),
    /// so repeated measurements resolve below the 2x bucket granularity
    /// instead of snapping to a power of two. Upper-bounded by the
    /// bucket's upper bound, lower-bounded by its lower bound — it never
    /// contradicts [`HistogramSnapshot::quantile_ns`] by more than one
    /// bucket width. `None` for an empty histogram.
    ///
    /// Use this where resolution matters more than the conservative
    /// stability of the bucket-upper-bound convention (the bench harness
    /// compares runs through it); keep `quantile_ns` for merged fleet
    /// stats where the overestimate guarantee is load-bearing.
    pub fn quantile_interp_ns(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 && seen + n >= rank {
                let lower = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let width = upper_bound_ns(i) as f64 - lower;
                let within = (rank - seen) as f64 - 0.5;
                return Some(lower + width * (within / n as f64).clamp(0.0, 1.0));
            }
            seen += n;
        }
        Some(upper_bound_ns(NUM_BUCKETS - 1) as f64)
    }

    /// Renders the histogram body fields (`count`, `total_ns`, `min_ns`,
    /// `max_ns`, `p50_ns`, `p95_ns`, `p99_ns`, `buckets`) into an
    /// existing writer. `min_ns`/`max_ns` are the exact observed
    /// extremes; the derived percentiles use
    /// [`HistogramSnapshot::quantile_interp_ns`] (sub-bucket resolution);
    /// the raw bucket array is always present, so consumers needing the
    /// conservative bucket-upper-bound values can recompute them.
    pub fn write_fields(&self, w: &mut JsonWriter) {
        w.field_u64("count", self.count);
        w.field_u64("total_ns", self.total_ns);
        w.field_u64("min_ns", self.min_ns);
        w.field_u64("max_ns", self.max_ns);
        w.field_f64("p50_ns", self.quantile_interp_ns(0.50).unwrap_or(0.0));
        w.field_f64("p95_ns", self.quantile_interp_ns(0.95).unwrap_or(0.0));
        w.field_f64("p99_ns", self.quantile_interp_ns(0.99).unwrap_or(0.0));
        let cells: Vec<String> = self.buckets.iter().map(u64::to_string).collect();
        w.field_raw("buckets", &format!("[{}]", cells.join(",")));
    }

    /// The histogram as a standalone one-line JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_fields(&mut w);
        w.finish()
    }
}

/// The exclusive upper bound of bucket `i`, in nanoseconds (saturating
/// for the open-ended last bucket).
pub fn upper_bound_ns(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

/// One registered metric.
#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Handles are `Arc`s: look a metric up
/// once, keep the handle on the hot path, and let readers render
/// snapshots concurrently.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.metrics.lock().expect("metrics lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.metrics.lock().expect("metrics lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.metrics.lock().expect("metrics lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// The canonical JSON exposition: one object, keys sorted (the
    /// registry map is a `BTreeMap`, so iteration order is the schema).
    /// Counters and gauges render as numbers; histograms as objects with
    /// `count`/`total_ns`/`min_ns`/`max_ns`/`p50_ns`/`p95_ns`/`p99_ns`/
    /// `buckets`.
    pub fn to_json_line(&self) -> String {
        let map = self.metrics.lock().expect("metrics lock");
        let mut w = JsonWriter::new();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => w.field_u64(name, c.get()),
                Metric::Gauge(g) => w.field_i64(name, g.get()),
                Metric::Histogram(h) => w.field_raw(name, &h.snapshot().to_json()),
            }
        }
        w.finish()
    }

    /// The Prometheus-style text exposition. `name{key=value}` registry
    /// keys become `name{key="value"}` sample labels; histograms render
    /// cumulative `_bucket{le="..."}` series plus `_sum` (seconds) and
    /// `_count`, per the Prometheus histogram convention.
    pub fn to_prometheus(&self) -> String {
        let map = self.metrics.lock().expect("metrics lock");
        let mut out = String::new();
        for (name, metric) in map.iter() {
            let (base, label) = split_label(name);
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&sample(base, label, None, &c.get().to_string()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&sample(base, label, None, &g.get().to_string()));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cum = 0u64;
                    for (i, &n) in snap.buckets.iter().enumerate() {
                        cum += n;
                        // Skip interior empty prefixes/suffixes? No: a
                        // fixed 48-series exposition per histogram is
                        // noisy. Emit only buckets up to the last
                        // non-empty one, then `+Inf`.
                        if n == 0 && snap.buckets[i..].iter().all(|&m| m == 0) {
                            break;
                        }
                        let le = upper_bound_ns(i).to_string();
                        out.push_str(&sample(
                            &format!("{base}_bucket"),
                            label,
                            Some(("le", &le)),
                            &cum.to_string(),
                        ));
                    }
                    out.push_str(&sample(
                        &format!("{base}_bucket"),
                        label,
                        Some(("le", "+Inf")),
                        &snap.count.to_string(),
                    ));
                    out.push_str(&sample(
                        &format!("{base}_sum"),
                        label,
                        None,
                        &format!("{:e}", snap.total_ns as f64 / 1e9),
                    ));
                    out.push_str(&sample(
                        &format!("{base}_count"),
                        label,
                        None,
                        &snap.count.to_string(),
                    ));
                }
            }
        }
        out
    }
}

/// Splits a registry key `name{key=value}` into `(name, Some((key, value)))`.
fn split_label(name: &str) -> (&str, Option<(&str, &str)>) {
    let Some(open) = name.find('{') else { return (name, None) };
    let Some(inner) = name[open + 1..].strip_suffix('}') else { return (name, None) };
    let Some((k, v)) = inner.split_once('=') else { return (name, None) };
    (&name[..open], Some((k, v)))
}

/// Escapes a Prometheus label value: `\`, `"`, and newline must be
/// backslash-escaped per the text exposition format, so a hostile
/// scenario name (registry keys embed caller-chosen names) cannot break
/// out of the quoted value and corrupt the scrape.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// One Prometheus text-format sample line. `extra` is an additional label
/// pair (used for histogram `le`). Label values are escaped.
fn sample(
    name: &str,
    label: Option<(&str, &str)>,
    extra: Option<(&str, &str)>,
    value: &str,
) -> String {
    let mut pairs = Vec::new();
    if let Some((k, v)) = label {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if pairs.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{}}} {value}\n", pairs.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn buckets_are_log_spaced_in_ns() {
        let h = Histogram::default();
        h.record(Duration::from_nanos(0)); // -> bucket 0
        h.record(Duration::from_nanos(1)); // -> bucket 0
        h.record(Duration::from_nanos(3)); // -> bucket 1
        h.record(Duration::from_micros(1)); // [512, 1024) ns -> bucket 9
        h.record(Duration::from_secs(200_000)); // overflow -> last bucket
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[9], 1);
        assert_eq!(s.buckets[NUM_BUCKETS - 1], 1);
        // Exact extremes, not bucket bounds.
        assert_eq!(s.min_ns, 0);
        assert_eq!(s.max_ns, 200_000_000_000_000);
    }

    #[test]
    fn quantiles_use_the_bucket_upper_bound() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.record_ns(100); // bucket 6: [64, 128)
        }
        h.record_ns(1 << 20); // bucket 20
        let s = h.snapshot();
        assert_eq!(s.quantile_ns(0.50), Some(128), "p50 = upper bound of bucket 6");
        assert_eq!(s.quantile_ns(0.95), Some(128));
        assert_eq!(s.quantile_ns(0.99), Some(128), "rank 99 of 100 still in bucket 6");
        assert_eq!(s.quantile_ns(1.0), Some(1 << 21), "max = upper bound of bucket 20");
        let empty = HistogramSnapshot {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            total_ns: 0,
            min_ns: 0,
            max_ns: 0,
        };
        assert_eq!(empty.quantile_ns(0.5), None);
    }

    #[test]
    fn quantile_edge_cases_are_total() {
        let empty = Histogram::default().snapshot();
        assert_eq!(empty.quantile_ns(0.5), None);
        assert_eq!(empty.quantile_interp_ns(0.5), None);
        assert_eq!((empty.min_ns, empty.max_ns), (0, 0), "empty extremes normalize to 0");

        // A single sample: every quantile names its bucket, q=0 and q=1
        // clamp to rank 1 instead of panicking or returning nonsense.
        let h = Histogram::default();
        h.record_ns(100); // bucket 6: [64, 128)
        let s = h.snapshot();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(s.quantile_ns(q), Some(128), "q={q}");
            let interp = s.quantile_interp_ns(q).unwrap();
            assert!((64.0..=128.0).contains(&interp), "q={q} -> {interp}");
        }
        // Midpoint convention: one occupant sits in the bucket middle.
        assert!((s.quantile_interp_ns(0.5).unwrap() - 96.0).abs() < 1e-9);
    }

    #[test]
    fn interpolated_quantiles_resolve_below_bucket_granularity() {
        // 20 identical-bucket observations (the bench-harness shape): the
        // upper-bound convention collapses every quantile to 131072, the
        // interpolated one spreads ranks across [65536, 131072).
        let h = Histogram::default();
        for _ in 0..20 {
            h.record_ns(100_000); // bucket 16: [65536, 131072)
        }
        let s = h.snapshot();
        assert_eq!(s.quantile_ns(0.50), Some(131_072));
        let p50 = s.quantile_interp_ns(0.50).unwrap();
        let p95 = s.quantile_interp_ns(0.95).unwrap();
        assert!(p50 > 65_536.0 && p50 < 131_072.0, "{p50}");
        assert!(p95 > p50 && p95 < 131_072.0, "{p95}");
        // rank 10 of 20 -> lower + (9.5/20) * width.
        assert!((p50 - (65_536.0 + 65_536.0 * 9.5 / 20.0)).abs() < 1e-6, "{p50}");
        // Interpolation stays within one bucket of the conservative answer
        // and respects bucket 0's zero lower bound.
        let h0 = Histogram::default();
        h0.record_ns(0);
        assert!(h0.snapshot().quantile_interp_ns(0.5).unwrap() >= 0.0);
    }

    #[test]
    fn registry_json_is_key_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total").add(3);
        reg.gauge("a_gauge").set(-2);
        reg.histogram("c_ns").record(Duration::from_micros(40));
        let line = reg.to_json_line();
        assert!(line.find("\"a_gauge\"").unwrap() < line.find("\"b_total\"").unwrap());
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("a_gauge").unwrap().as_i64(), Some(-2));
        assert_eq!(v.get("b_total").unwrap().as_u64(), Some(3));
        let h = v.get("c_ns").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(h.get("min_ns").unwrap().as_u64(), Some(40_000));
        assert_eq!(h.get("max_ns").unwrap().as_u64(), Some(40_000));
        assert_eq!(h.get("buckets").unwrap().as_array().unwrap().len(), NUM_BUCKETS);
        // 40 µs = 40000 ns -> bucket 15 ([32768, 65536)); one occupant
        // interpolates to the bucket midpoint.
        assert_eq!(h.get("p50_ns").unwrap().as_f64(), Some(49152.0));
    }

    #[test]
    fn handles_are_shared() {
        let reg = MetricsRegistry::new();
        reg.counter("x_total").inc();
        reg.counter("x_total").inc();
        assert_eq!(reg.counter("x_total").get(), 2);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x").inc();
        reg.gauge("x");
    }

    #[test]
    fn prometheus_exposition_renders_labels_and_le_series() {
        let reg = MetricsRegistry::new();
        reg.counter("serve_jobs_total{verb=evaluate}").add(5);
        reg.gauge("engine_cache_entries").set(2);
        reg.histogram("serve_latency_ns{verb=evaluate}").record_ns(100);
        let text = reg.to_prometheus();
        assert!(text.contains("serve_jobs_total{verb=\"evaluate\"} 5\n"), "{text}");
        assert!(text.contains("engine_cache_entries 2\n"));
        assert!(
            text.contains("serve_latency_ns_bucket{verb=\"evaluate\",le=\"128\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("serve_latency_ns_bucket{verb=\"evaluate\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("serve_latency_ns_count{verb=\"evaluate\"} 1\n"));
        assert!(text.contains("serve_latency_ns_sum{verb=\"evaluate\"} 1e-7\n"), "{text}");
    }

    #[test]
    fn prometheus_exposition_escapes_hostile_label_values() {
        let reg = MetricsRegistry::new();
        // A scenario name with a quote, a backslash, and a newline must not
        // break out of the quoted label value.
        reg.counter("engine_cache_hits_total{scenario=evil\"} 999\ninjected\\}").add(1);
        let text = reg.to_prometheus();
        assert!(
            text.contains("engine_cache_hits_total{scenario=\"evil\\\"} 999\\ninjected\\\\\"} 1\n"),
            "{text}"
        );
        // The raw quote, newline, and lone backslash never appear bare:
        // the exposition stays one sample per line.
        assert_eq!(text.lines().count(), 1, "{text}");
        assert!(!text.contains("evil\"}"), "unescaped quote leaked: {text}");
    }

    #[test]
    fn concurrent_writers_lose_no_increments() {
        let reg = Arc::new(MetricsRegistry::new());
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("hammer_total");
                    let h = reg.histogram("hammer_ns");
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.record_ns(i as u64);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(reg.counter("hammer_total").get(), (THREADS * PER_THREAD) as u64);
        let s = reg.histogram("hammer_ns").snapshot();
        assert_eq!(s.count, (THREADS * PER_THREAD) as u64);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count, "every observation landed in a bucket");
    }
}
