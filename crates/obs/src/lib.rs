//! `psdacc-obs` — unified observability for the psdacc stack.
//!
//! Four pieces, std-only, shared by every layer:
//!
//! * [`metrics`] — a named registry of counters, gauges, and log-bucketed
//!   duration histograms, with canonical JSON and Prometheus-style text
//!   expositions. Replaces the bespoke stats structs that serve, sched,
//!   engine, and store each grew independently.
//! * [`trace`] — structured spans/events as JSONL, with ids that survive
//!   the wire so a fleet run merges daemon-side spans into one
//!   end-to-end trace.
//! * [`stage`] — a process-global sink for feature-gated stage timers in
//!   the numeric hot paths (`freq::preprocess`, `tau_pp`), costing one
//!   atomic load when not installed.
//! * [`profile`] — a hierarchical self-profiler over the same
//!   first-install-wins contract: scoped frames on a thread-local stack
//!   aggregate into a call tree keyed by frame path, rendered as a
//!   ranked hotspot table or folded stacks for flamegraph tooling.
//! * [`analyze`] — trace analytics over a merged fleet trace: critical
//!   path, per-stage totals, per-daemon utilization, and greedy-refinement
//!   trajectories, rendered as a JSON line or a human breakdown.
//! * [`report`] — the noise-budget report schema: canonical JSON line and
//!   a ranked human table (top-K + cumulative share) explaining every
//!   accuracy number node by node.
//!
//! The [`json`] module (writer + parser) also lives here — it predates
//! this crate in `psdacc-engine`, which still re-exports it.
//!
//! Observability is **behavior-neutral by construction**: nothing in this
//! crate feeds back into evaluation, so results are bit-identical with
//! tracing/metrics on or off (asserted end-to-end by the fleet tests).

#![warn(missing_docs)]

pub mod analyze;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod stage;
pub mod trace;

pub use analyze::{CriticalHop, DaemonUtilization, StageTotal, TraceAnalysis};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, NUM_BUCKETS};
pub use profile::{FrameGuard, ProfileFrame, ProfileSnapshot, Profiler};
pub use report::{BudgetReport, BudgetReportRow};
pub use trace::{
    EventKind, OpenSpan, Severity, SpanId, TraceEvent, TraceStore, TraceStoreStats, Tracer,
    MAX_TS_NS,
};
