//! The deterministic 196-image evaluation corpus.
//!
//! Mirrors the paper's "196 grayscale images extracted from USC-SIPI and
//! RPI-CIPR image databases and from Brodatz texture images": a fixed mix
//! of natural-spectrum fields, textures and structured content, generated
//! reproducibly from the image index.

use crate::generator::{generate, ImageClass};

/// Number of images in the standard corpus (as in the paper).
pub const CORPUS_SIZE: usize = 196;

/// The class of corpus image `index` (deterministic mix: half natural-like
/// power-law fields, a quarter textures, the rest structured content).
pub fn corpus_class(index: usize) -> ImageClass {
    match index % 8 {
        0..=2 => ImageClass::PowerLaw { alpha: 1.6 + 0.2 * ((index / 8) % 5) as f64 },
        3 | 4 => ImageClass::Texture {
            alpha: 1.5 + 0.25 * ((index / 8) % 4) as f64,
            frequency: 0.05 + 0.03 * ((index / 8) % 7) as f64,
        },
        5 => ImageClass::Grating {
            frequency: 0.04 + 0.02 * ((index / 8) % 10) as f64,
            angle: 0.3 * (index / 8) as f64,
        },
        6 => ImageClass::Blobs { count: 3 + (index / 8) % 9 },
        _ => ImageClass::Checkerboard { cell: 2 + (index / 8) % 14 },
    }
}

/// Generates corpus image `index` at size `n x n` (values in `[0, 1)`).
///
/// # Panics
///
/// Panics if `index >= CORPUS_SIZE` or `n` is odd/zero.
pub fn corpus_image(index: usize, n: usize) -> Vec<f64> {
    assert!(index < CORPUS_SIZE, "corpus has {CORPUS_SIZE} images");
    generate(corpus_class(index), n, 0x5EED_0000 + index as u64)
}

/// Iterator over the first `count` corpus images.
pub fn corpus_iter(count: usize, n: usize) -> impl Iterator<Item = Vec<f64>> {
    (0..count.min(CORPUS_SIZE)).map(move |i| corpus_image(i, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus_image(17, 32);
        let b = corpus_image(17, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn corpus_has_class_variety() {
        let mut power_law = 0;
        let mut texture = 0;
        let mut other = 0;
        for i in 0..CORPUS_SIZE {
            match corpus_class(i) {
                ImageClass::PowerLaw { .. } => power_law += 1,
                ImageClass::Texture { .. } => texture += 1,
                _ => other += 1,
            }
        }
        assert!(power_law >= 70, "{power_law} power-law images");
        assert!(texture >= 45, "{texture} textures");
        assert!(other >= 40, "{other} structured images");
        assert_eq!(power_law + texture + other, CORPUS_SIZE);
    }

    #[test]
    fn images_differ_across_indices() {
        let a = corpus_image(0, 32);
        let b = corpus_image(1, 32);
        assert_ne!(a, b);
    }

    #[test]
    fn iterator_bounds() {
        assert_eq!(corpus_iter(5, 16).count(), 5);
        assert_eq!(corpus_iter(1000, 16).count(), CORPUS_SIZE);
    }

    #[test]
    #[should_panic(expected = "corpus has")]
    fn index_validated() {
        let _ = corpus_image(CORPUS_SIZE, 32);
    }
}
