//! Minimal PGM (portable graymap) I/O for experiment outputs.
//!
//! The Fig. 7 experiment writes the 2-D error spectra as PGM images —
//! the same grayscale, log-normalized rendering the paper shows.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// An 8-bit grayscale image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    /// Row-major pixel data.
    pub pixels: Vec<u8>,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

impl GrayImage {
    /// Creates a black image.
    pub fn new(width: usize, height: usize) -> Self {
        GrayImage { pixels: vec![0; width * height], width, height }
    }

    /// Builds an image from `f64` samples by affine-mapping `[lo, hi]` to
    /// `[0, 255]` (values outside are clamped).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or `hi <= lo`.
    pub fn from_f64(data: &[f64], width: usize, height: usize, lo: f64, hi: f64) -> Self {
        assert_eq!(data.len(), width * height, "data length must equal width * height");
        assert!(hi > lo, "hi must exceed lo");
        let scale = 255.0 / (hi - lo);
        let pixels =
            data.iter().map(|&v| ((v - lo) * scale).round().clamp(0.0, 255.0) as u8).collect();
        GrayImage { pixels, width, height }
    }

    /// Converts to `f64` samples in `[0, 1)` (pixel / 256 — exactly
    /// representable with 8 fractional bits).
    pub fn to_f64(&self) -> Vec<f64> {
        self.pixels.iter().map(|&p| p as f64 / 256.0).collect()
    }

    /// Writes binary PGM (P5).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_pgm(&self, path: &Path) -> io::Result<()> {
        let mut f = File::create(path)?;
        write!(f, "P5\n{} {}\n255\n", self.width, self.height)?;
        f.write_all(&self.pixels)
    }

    /// Reads binary PGM (P5), 8-bit only.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` for malformed headers.
    pub fn read_pgm(path: &Path) -> io::Result<Self> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        parse_pgm(&buf)
    }
}

fn parse_pgm(buf: &[u8]) -> io::Result<GrayImage> {
    let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let mut pos = 0usize;
    let mut token = || -> io::Result<String> {
        // Skip whitespace and comments.
        loop {
            while pos < buf.len() && buf[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos < buf.len() && buf[pos] == b'#' {
                while pos < buf.len() && buf[pos] != b'\n' {
                    pos += 1;
                }
            } else {
                break;
            }
        }
        let start = pos;
        while pos < buf.len() && !buf[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if start == pos {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated header"));
        }
        Ok(String::from_utf8_lossy(&buf[start..pos]).into_owned())
    };
    if token()? != "P5" {
        return Err(err("not a binary PGM (P5)"));
    }
    let width: usize = token()?.parse().map_err(|_| err("bad width"))?;
    let height: usize = token()?.parse().map_err(|_| err("bad height"))?;
    let maxval: usize = token()?.parse().map_err(|_| err("bad maxval"))?;
    if maxval != 255 {
        return Err(err("only 8-bit PGM supported"));
    }
    let data_start = pos + 1; // single whitespace after maxval
    let need = width * height;
    if buf.len() < data_start + need {
        return Err(err("truncated pixel data"));
    }
    Ok(GrayImage { pixels: buf[data_start..data_start + need].to_vec(), width, height })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_tempfile() {
        let mut img = GrayImage::new(4, 3);
        for (i, p) in img.pixels.iter_mut().enumerate() {
            *p = (i * 21) as u8;
        }
        let path = std::env::temp_dir().join("psdacc_test_roundtrip.pgm");
        img.write_pgm(&path).unwrap();
        let back = GrayImage::read_pgm(&path).unwrap();
        assert_eq!(img, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn from_f64_clamps_and_scales() {
        let img = GrayImage::from_f64(&[-1.0, 0.0, 0.5, 1.0, 2.0], 5, 1, 0.0, 1.0);
        assert_eq!(img.pixels, vec![0, 0, 128, 255, 255]);
    }

    #[test]
    fn to_f64_range() {
        let img = GrayImage { pixels: vec![0, 128, 255], width: 3, height: 1 };
        let v = img.to_f64();
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 0.5);
        assert!(v[2] < 1.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_pgm(b"P6\n1 1\n255\nx").is_err());
        assert!(parse_pgm(b"P5\n2 2\n255\nab").is_err()); // truncated
        assert!(parse_pgm(b"P5\n# comment\n2 1\n255\nab").is_ok());
    }
}
