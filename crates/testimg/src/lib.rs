//! # psdacc-testimg
//!
//! Deterministic synthetic grayscale image corpus for the `psdacc` workspace
//! (DATE 2016 PSD accuracy-evaluation reproduction) — the stand-in for the
//! USC-SIPI / RPI-CIPR / Brodatz images the paper's DWT experiments use
//! (substitution rationale in `DESIGN.md` §4).
//!
//! * [`generator`] — seeded image classes (`1/f^alpha` random fields,
//!   gratings, checkerboards, gradients, blobs, textures),
//! * [`dataset`] — the fixed 196-image corpus,
//! * [`pgm`] — PGM I/O for experiment outputs (Fig. 7 spectra).

pub mod dataset;
pub mod generator;
pub mod pgm;

pub use dataset::{corpus_class, corpus_image, corpus_iter, CORPUS_SIZE};
pub use generator::{generate, ImageClass};
pub use pgm::GrayImage;
