//! Synthetic grayscale image generators.
//!
//! Substitute for the USC-SIPI / RPI-CIPR / Brodatz corpora used in the
//! paper (Section IV-A-3), which are not redistributable. What the DWT
//! noise experiments require from an image is only that it exercises every
//! subband with realistic spectral decay — natural images famously follow a
//! `1/f^alpha` power law — so the core generator synthesizes Gaussian
//! random fields with controllable spectral slope, complemented by
//! structured classes (gratings, checkerboards, gradients, blobs) and
//! texture-like composites.

use psdacc_fft::{ifft2d, Complex};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Image classes available from the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImageClass {
    /// Gaussian random field with `1/f^alpha` isotropic spectrum
    /// (`alpha ~ 2` mimics natural images; 0 is white noise).
    PowerLaw {
        /// Spectral slope.
        alpha: f64,
    },
    /// Sinusoidal grating at the given normalized frequency and angle.
    Grating {
        /// Cycles per pixel along the grating normal.
        frequency: f64,
        /// Orientation in radians.
        angle: f64,
    },
    /// Checkerboard with the given cell size in pixels.
    Checkerboard {
        /// Cell edge length.
        cell: usize,
    },
    /// Smooth diagonal gradient.
    Gradient,
    /// Random smooth blobs (sum of Gaussian bumps).
    Blobs {
        /// Number of bumps.
        count: usize,
    },
    /// Brodatz-like texture: power-law base modulated by a grating.
    Texture {
        /// Spectral slope of the base field.
        alpha: f64,
        /// Modulation frequency.
        frequency: f64,
    },
}

/// Generates one `n x n` image with values in `[0, 1)`, deterministically
/// from `seed`.
///
/// # Panics
///
/// Panics if `n` is zero or not even (FFT-friendly sizes expected).
pub fn generate(class: ImageClass, n: usize, seed: u64) -> Vec<f64> {
    assert!(n > 0 && n.is_multiple_of(2), "image size must be even and positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let raw = match class {
        ImageClass::PowerLaw { alpha } => power_law_field(n, alpha, &mut rng),
        ImageClass::Grating { frequency, angle } => {
            let (fx, fy) = (frequency * angle.cos(), frequency * angle.sin());
            let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            (0..n * n)
                .map(|i| {
                    let (r, c) = ((i / n) as f64, (i % n) as f64);
                    (std::f64::consts::TAU * (fx * c + fy * r) + phase).sin()
                })
                .collect()
        }
        ImageClass::Checkerboard { cell } => {
            let cell = cell.max(1);
            (0..n * n)
                .map(|i| {
                    let (r, c) = (i / n, i % n);
                    if ((r / cell) + (c / cell)) % 2 == 0 {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect()
        }
        ImageClass::Gradient => (0..n * n)
            .map(|i| {
                let (r, c) = ((i / n) as f64, (i % n) as f64);
                (r + c) / (2.0 * n as f64) * 2.0 - 1.0
            })
            .collect(),
        ImageClass::Blobs { count } => {
            let mut img = vec![0.0; n * n];
            for _ in 0..count.max(1) {
                let cx: f64 = rng.gen_range(0.0..n as f64);
                let cy: f64 = rng.gen_range(0.0..n as f64);
                let sigma: f64 = rng.gen_range(n as f64 / 32.0..n as f64 / 6.0);
                let amp: f64 = rng.gen_range(-1.0..1.0);
                for r in 0..n {
                    for c in 0..n {
                        // Periodic distance keeps the corpus FFT-friendly.
                        let dx = periodic_dist(c as f64, cx, n as f64);
                        let dy = periodic_dist(r as f64, cy, n as f64);
                        img[r * n + c] +=
                            amp * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
                    }
                }
            }
            img
        }
        ImageClass::Texture { alpha, frequency } => {
            let base = power_law_field(n, alpha, &mut rng);
            let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            base.iter()
                .enumerate()
                .map(|(i, &v)| {
                    let (r, c) = ((i / n) as f64, (i % n) as f64);
                    let m = (std::f64::consts::TAU * frequency * (r + 0.7 * c) + phase).sin();
                    v * (1.0 + 0.5 * m)
                })
                .collect()
        }
    };
    normalize(raw)
}

/// Gaussian random field with isotropic `1/f^alpha` power spectrum, built by
/// shaping white noise in the 2-D frequency domain.
fn power_law_field(n: usize, alpha: f64, rng: &mut ChaCha8Rng) -> Vec<f64> {
    let mut spec = vec![Complex::ZERO; n * n];
    for ky in 0..n {
        for kx in 0..n {
            if kx == 0 && ky == 0 {
                continue; // no DC: mean handled by normalize()
            }
            // Symmetric frequency coordinates.
            let fx = if kx <= n / 2 { kx as f64 } else { kx as f64 - n as f64 };
            let fy = if ky <= n / 2 { ky as f64 } else { ky as f64 - n as f64 };
            let f = (fx * fx + fy * fy).sqrt() / n as f64;
            let mag = f.powf(-alpha / 2.0);
            let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            spec[ky * n + kx] = Complex::from_polar(mag, phase);
        }
    }
    // Real field: take the real part of the inverse transform (equivalent to
    // Hermitian-symmetrizing the spectrum, up to a factor of 2 in power).
    ifft2d(&spec, n, n).iter().map(|v| v.re).collect()
}

fn periodic_dist(a: f64, b: f64, n: f64) -> f64 {
    let d = (a - b).abs() % n;
    d.min(n - d)
}

/// Affine-normalizes to `[0, 1)` (the 8-bit pixel range / 256).
fn normalize(mut img: Vec<f64>) -> Vec<f64> {
    let lo = img.iter().cloned().fold(f64::MAX, f64::min);
    let hi = img.iter().cloned().fold(f64::MIN, f64::max);
    let span = (hi - lo).max(1e-12);
    for v in &mut img {
        *v = (*v - lo) / span * (255.0 / 256.0);
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdacc_fft::periodogram2d;

    #[test]
    fn deterministic_per_seed() {
        let a = generate(ImageClass::PowerLaw { alpha: 2.0 }, 32, 7);
        let b = generate(ImageClass::PowerLaw { alpha: 2.0 }, 32, 7);
        assert_eq!(a, b);
        let c = generate(ImageClass::PowerLaw { alpha: 2.0 }, 32, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn values_in_unit_range() {
        for class in [
            ImageClass::PowerLaw { alpha: 1.5 },
            ImageClass::Grating { frequency: 0.1, angle: 0.5 },
            ImageClass::Checkerboard { cell: 4 },
            ImageClass::Gradient,
            ImageClass::Blobs { count: 5 },
            ImageClass::Texture { alpha: 2.0, frequency: 0.15 },
        ] {
            let img = generate(class, 32, 3);
            assert_eq!(img.len(), 1024);
            assert!(img.iter().all(|&v| (0.0..1.0).contains(&v)), "{class:?}");
        }
    }

    #[test]
    fn power_law_spectrum_decays() {
        let n = 64;
        let img = generate(ImageClass::PowerLaw { alpha: 2.0 }, n, 11);
        let s = periodogram2d(&img, n, n);
        // Average power near DC ring vs near Nyquist ring.
        let low: f64 = (1..4).map(|k| s[k] + s[k * n]).sum::<f64>() / 6.0;
        let high: f64 = (n / 2 - 3..n / 2).map(|k| s[k] + s[k * n]).sum::<f64>() / 6.0;
        assert!(low > 10.0 * high, "low {low} vs high {high}");
    }

    #[test]
    fn white_field_is_flat_ish() {
        let n = 64;
        let img = generate(ImageClass::PowerLaw { alpha: 0.0 }, n, 13);
        let s = periodogram2d(&img, n, n);
        let low: f64 = (1..6).map(|k| s[k]).sum::<f64>() / 5.0;
        let high: f64 = (n / 2 - 5..n / 2).map(|k| s[k]).sum::<f64>() / 5.0;
        assert!(low < 20.0 * high, "white field should not decay strongly");
    }

    #[test]
    fn checkerboard_structure() {
        let img = generate(ImageClass::Checkerboard { cell: 8 }, 32, 0);
        assert_eq!(img[0], img[7]); // same cell
        assert_ne!(img[0], img[8]); // adjacent cell flips
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_size_rejected() {
        let _ = generate(ImageClass::Gradient, 31, 0);
    }
}
