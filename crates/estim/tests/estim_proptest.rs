//! Property-based tests of the measured-signal estimators.
//!
//! Two estimator-correctness properties from the PR checklist:
//!
//! 1. Welch on seeded white noise is flat within tolerance and satisfies
//!    Parseval: total estimated power ≈ sample variance.
//! 2. Cross-spectrum on common-signal-plus-independent-noise converges
//!    below the single-channel noise floor.

use proptest::prelude::*;
use psdacc_dsp::SignalGenerator;
use psdacc_estim::{cross_psd, welch_psd, WelchConfig, WelchWindow};

fn windows() -> impl Strategy<Value = WelchWindow> {
    (0u8..5, 2.0f64..12.0).prop_map(|(k, beta)| match k {
        0 => WelchWindow::Rectangular,
        1 => WelchWindow::Hann,
        2 => WelchWindow::Hamming,
        3 => WelchWindow::Blackman,
        _ => WelchWindow::Kaiser(beta),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Welch on seeded white noise: every bin within tolerance of the
    /// flat level, and Parseval holds (total power ≈ sample variance).
    #[test]
    fn welch_white_noise_flat_and_parseval(
        seed in 0u64..1_000_000,
        nfft_log2 in 4u32..8,
        overlap in 0.0f64..0.75,
        window in windows(),
        offset in -4.0f64..4.0,
    ) {
        let nfft = 1usize << nfft_log2;
        let n = 1usize << 15;
        let mut gen = SignalGenerator::new(seed);
        let mut x = gen.uniform_white(n, 1.0);
        for v in &mut x {
            *v += offset;
        }
        let est = welch_psd(&x, &WelchConfig { nfft, overlap, window }).unwrap();

        // Parseval against the sample variance (the mean travels apart).
        let mean = x.iter().sum::<f64>() / n as f64;
        let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        prop_assert!(
            (est.power() - var).abs() < 0.05 * var,
            "Parseval: {} vs sample variance {}", est.power(), var
        );
        prop_assert!((est.mean - offset).abs() < 0.05);

        // Flatness: every non-DC bin within 40% of the flat level (the
        // estimator variance shrinks with segments; 2^15 samples at
        // nfft <= 128 gives >= 256 segments, so 40% is conservative).
        let flat = var / nfft as f64;
        for (k, &v) in est.bins.iter().enumerate().skip(1) {
            prop_assert!(
                (v - flat).abs() < 0.4 * flat,
                "bin {k}: {v} vs flat level {flat} (nfft {nfft})"
            );
        }
    }

    /// Cross-spectrum of a common signal through two independent-noise
    /// channels: the in-band estimate lands near the true common-signal
    /// PSD while the single-channel estimate is stuck a noise floor above.
    #[test]
    fn cross_spectrum_converges_below_single_channel_floor(
        seed in 0u64..1_000_000,
        noise_sigma in 0.5f64..2.0,
    ) {
        let n = 1usize << 16;
        let nfft = 64usize;
        let cfg = WelchConfig { nfft, overlap: 0.5, window: WelchWindow::Hann };
        let mut gen = SignalGenerator::new(seed);
        let common = gen.ar1(n, 0.9, 0.1);
        let na = gen.gaussian_white(n, noise_sigma);
        let nb = gen.gaussian_white(n, noise_sigma);
        let a: Vec<f64> = common.iter().zip(&na).map(|(s, v)| s + v).collect();
        let b: Vec<f64> = common.iter().zip(&nb).map(|(s, v)| s + v).collect();

        let cross = cross_psd(&a, &b, &cfg).unwrap();
        let single = welch_psd(&a, &cfg).unwrap();
        let truth = welch_psd(&common, &cfg).unwrap();

        // Compare total power over the high band, where the AR(1) common
        // signal is weakest and the white channel noise dominates.
        let hi = |bins: &[f64]| bins[nfft / 4..3 * nfft / 4].iter().sum::<f64>();
        let floor = hi(&single.bins);
        let denoised = hi(&cross.bins);
        let target = hi(&truth.bins);
        prop_assert!(floor > 3.0 * target, "floor {floor} should dominate target {target}");
        prop_assert!(
            denoised < 0.5 * floor,
            "cross estimate {denoised} should fall below the single-channel floor {floor}"
        );
        prop_assert!(
            denoised < 8.0 * target + 0.05 * floor,
            "cross estimate {denoised} should approach the truth {target}"
        );
    }
}
