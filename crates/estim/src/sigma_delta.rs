//! Bit-true sigma-delta modulators and spectrum-derived figures of merit.
//!
//! The modulators are textbook single-bit loops with a ±1 quantizer
//! (full scale Δ = 2):
//!
//! * order 1: `y = sign(s); s += x - y` — one integrator,
//! * order 2 (Boser–Wooley form): `y = sign(s2); s1 += x - y;
//!   s2 += s1 - 2 y` — stable for inputs up to roughly 0.7 FS.
//!
//! Figures of merit are computed from an **estimated spectrum** of the
//! modulator output (two-sided bin-mass, the workspace convention): the
//! signal power is gathered in a small leakage window around the
//! fundamental, everything else inside the signal band `|f| <= 1/(2 OSR)`
//! is noise-plus-distortion, harmonics get their own windows for THD, and
//! the tallest non-signal in-band bin sets SFDR.

use crate::EstimError;

/// Run a bit-true sigma-delta modulator (order 1 or 2) over `input`
/// (full scale ±1). Returns the ±1 output bitstream as f64 samples.
///
/// Deterministic: the loop has no dither, so the output is a pure
/// function of the input samples.
pub fn modulate(order: usize, input: &[f64]) -> Result<Vec<f64>, EstimError> {
    let _frame = psdacc_obs::profile::frame("estim.sigma_delta");
    match order {
        1 => {
            let mut s = 0.0f64;
            Ok(input
                .iter()
                .map(|&x| {
                    let y = if s >= 0.0 { 1.0 } else { -1.0 };
                    s += x - y;
                    y
                })
                .collect())
        }
        2 => {
            let mut s1 = 0.0f64;
            let mut s2 = 0.0f64;
            Ok(input
                .iter()
                .map(|&x| {
                    let y = if s2 >= 0.0 { 1.0 } else { -1.0 };
                    s1 += x - y;
                    s2 += s1 - 2.0 * y;
                    y
                })
                .collect())
        }
        other => Err(EstimError::BadParam {
            param: "order",
            detail: format!("modulator order must be 1 or 2, got {other}"),
        }),
    }
}

/// Quantization-error trace of a modulator run: `y[n] - x[n]`, the signal
/// the loop adds to the input. Estimating its PSD gives the shaped-noise
/// spectrum that a decimation filter sees.
pub fn modulation_error(order: usize, input: &[f64]) -> Result<Vec<f64>, EstimError> {
    let y = modulate(order, input)?;
    Ok(y.iter().zip(input).map(|(y, x)| y - x).collect())
}

/// Figures of merit of a sigma-delta converter, all in dB (except ENOB,
/// in bits), derived from an estimated output spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigmaDeltaFom {
    /// Signal-to-noise-and-distortion ratio inside the signal band.
    pub sndr_db: f64,
    /// Dynamic range: SNDR extrapolated to a full-scale input
    /// (`sndr_db - 20 log10(amplitude)`).
    pub dr_db: f64,
    /// Spurious-free dynamic range: fundamental peak over the tallest
    /// non-signal in-band bin.
    pub sfdr_db: f64,
    /// Total harmonic distortion: harmonic power over signal power
    /// (negative when harmonics are below the carrier).
    pub thd_db: f64,
    /// Effective number of bits, `(sndr_db - 1.76) / 6.02`.
    pub enob: f64,
    /// In-band noise-plus-distortion power (absolute, bin-mass units).
    pub noise_power: f64,
    /// Recovered signal power (absolute, bin-mass units).
    pub signal_power: f64,
}

/// Half-width (in bins) of the leakage window gathered around the
/// fundamental and each harmonic.
const LEAK_BINS: usize = 2;
/// Number of harmonics (2f0, 3f0, ...) folded into the THD figure.
const THD_HARMONICS: usize = 5;

fn fold(bin: i64, nfft: usize) -> usize {
    bin.rem_euclid(nfft as i64) as usize
}

/// Compute DR/SFDR/THD figures of merit from a two-sided bin-mass
/// `spectrum` of a modulator output driven by a tone at `signal_bin`
/// (cycles per record, `0 < signal_bin < nfft/2`) with amplitude
/// `amplitude` (fraction of full scale), oversampled by `osr`.
///
/// The signal band is `|f| <= 1/(2 osr)`; the DC bin and the leakage
/// window around the (folded) fundamental are excluded from the noise.
pub fn sigma_delta_fom(
    spectrum: &[f64],
    signal_bin: usize,
    amplitude: f64,
    osr: usize,
) -> Result<SigmaDeltaFom, EstimError> {
    let _frame = psdacc_obs::profile::frame("estim.fom");
    let nfft = spectrum.len();
    if nfft < 8 {
        return Err(EstimError::BadParam {
            param: "spectrum",
            detail: format!("need at least 8 bins, got {nfft}"),
        });
    }
    if osr == 0 || nfft / (2 * osr) == 0 {
        return Err(EstimError::BadParam {
            param: "osr",
            detail: format!("osr {osr} leaves no in-band bins at nfft {nfft}"),
        });
    }
    if signal_bin == 0 || signal_bin >= nfft / 2 {
        return Err(EstimError::BadParam {
            param: "signal_bin",
            detail: format!("signal bin must be in (0, {}), got {signal_bin}", nfft / 2),
        });
    }
    if !amplitude.is_finite() || amplitude <= 0.0 || amplitude > 1.0 {
        return Err(EstimError::BadParam {
            param: "amplitude",
            detail: format!("amplitude must be in (0, 1], got {amplitude}"),
        });
    }
    let band = nfft / (2 * osr); // in-band: folded bin index <= band
    if signal_bin > band {
        return Err(EstimError::BadParam {
            param: "signal_bin",
            detail: format!("signal bin {signal_bin} is outside the band (<= {band})"),
        });
    }

    // Folded bin index: distance to the nearest of 0 and nfft (two-sided
    // spectra are conjugate-symmetric for real signals).
    let folded = |k: usize| k.min(nfft - k);

    // Leakage window membership around a (folded) center bin.
    let in_window = |k: usize, center: usize| {
        let fk = folded(k) as i64;
        (fk - center as i64).abs() <= LEAK_BINS as i64
    };

    let mut signal_power = 0.0;
    let mut noise_power = 0.0;
    let mut harmonic_power = [0.0; THD_HARMONICS];
    let harmonic_bins: Vec<usize> =
        (2..2 + THD_HARMONICS).map(|h| folded(fold((h * signal_bin) as i64, nfft))).collect();
    let mut sfdr_spur: f64 = 0.0;
    for k in 0..nfft {
        let fk = folded(k);
        if fk > band {
            continue; // out of band: the decimation filter removes it
        }
        let v = spectrum[k];
        if in_window(k, signal_bin) {
            signal_power += v;
            continue;
        }
        if fk <= LEAK_BINS {
            continue; // DC window: the mean is not noise
        }
        noise_power += v;
        for (h, &hb) in harmonic_bins.iter().enumerate() {
            if in_window(k, hb) {
                harmonic_power[h] += v;
            }
        }
        if v > sfdr_spur {
            sfdr_spur = v;
        }
    }
    let thd_total: f64 = harmonic_power.iter().sum();
    let db = |num: f64, den: f64| {
        10.0 * (num.max(f64::MIN_POSITIVE) / den.max(f64::MIN_POSITIVE)).log10()
    };
    let sndr_db = db(signal_power, noise_power);
    let dr_db = sndr_db - 20.0 * amplitude.log10();
    // SFDR compares the fundamental's windowed power against the tallest
    // single spur bin, both in-band.
    let sfdr_db = db(signal_power, sfdr_spur);
    let thd_db = db(thd_total, signal_power);
    let enob = (sndr_db - 1.76) / 6.02;
    Ok(SigmaDeltaFom { sndr_db, dr_db, sfdr_db, thd_db, enob, noise_power, signal_power })
}

/// Theoretical in-band quantization-noise power of an order-`l` single-bit
/// modulator (Δ = 2) at oversampling ratio `osr`:
/// `Δ²/12 · π^{2L}/(2L+1) · OSR^{-(2L+1)}`.
pub fn theoretical_inband_noise(order: usize, osr: usize) -> f64 {
    let l = order as f64;
    let delta2_12 = 4.0 / 12.0;
    delta2_12 * std::f64::consts::PI.powf(2.0 * l) / (2.0 * l + 1.0)
        * (osr as f64).powf(-(2.0 * l + 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, cycles_per_record: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                amp * (std::f64::consts::TAU * cycles_per_record as f64 * i as f64 / n as f64).sin()
            })
            .collect()
    }

    /// Single-record periodogram of the full modulator output: keeps the
    /// tone coherent (integer cycles per record, no leakage beyond the
    /// window) so the figures of merit are sharp.
    fn spectrum(y: &[f64]) -> Vec<f64> {
        psdacc_dsp::periodogram(y)
    }

    #[test]
    fn mod1_output_is_plus_minus_one() {
        let x = tone(1024, 3, 0.5);
        let y = modulate(1, &x).unwrap();
        assert!(y.iter().all(|&v| v == 1.0 || v == -1.0));
        // The bitstream tracks the input on average.
        let err: f64 = x.iter().zip(&y).map(|(a, b)| a - b).sum::<f64>().abs();
        assert!(err < 2.0, "running error should stay bounded: {err}");
    }

    #[test]
    fn mod2_beats_mod1_inband() {
        let n = 1 << 14;
        let osr = 64;
        let bin = 5; // well inside the band nfft/(2*osr) = 128
        let x = tone(n, bin, 0.5);
        let s1 = spectrum(&modulate(1, &x).unwrap());
        let s2 = spectrum(&modulate(2, &x).unwrap());
        let f1 = sigma_delta_fom(&s1, bin, 0.5, osr).unwrap();
        let f2 = sigma_delta_fom(&s2, bin, 0.5, osr).unwrap();
        assert!(
            f2.sndr_db > f1.sndr_db + 10.0,
            "2nd order should win by >10 dB: {} vs {}",
            f2.sndr_db,
            f1.sndr_db
        );
    }

    #[test]
    fn mod1_snr_tracks_theory_with_osr() {
        // Doubling OSR should buy ~9 dB for a 1st-order loop (theory:
        // 3(2L+1) dB/octave = 9 dB). Tones at integer bins, same amplitude.
        let n = 1 << 15;
        let x = tone(n, 7, 0.5);
        let s = spectrum(&modulate(1, &x).unwrap());
        let lo = sigma_delta_fom(&s, 7, 0.5, 32).unwrap();
        let hi = sigma_delta_fom(&s, 7, 0.5, 64).unwrap();
        let gain = hi.sndr_db - lo.sndr_db;
        assert!((gain - 9.0).abs() < 4.0, "octave gain {gain} dB, expected ~9");
    }

    #[test]
    fn noise_power_is_near_theory() {
        let n = 1 << 15;
        let osr = 32;
        let x = tone(n, 9, 0.5);
        let s = spectrum(&modulate(1, &x).unwrap());
        let fom = sigma_delta_fom(&s, 9, 0.5, osr).unwrap();
        let theory = theoretical_inband_noise(1, osr);
        let ratio = fom.noise_power / theory;
        // Tonal idle patterns make MOD1 deviate from the white-noise
        // model; an order-of-magnitude bracket is the honest assertion.
        assert!((0.1..10.0).contains(&ratio), "noise {} vs theory {theory}", fom.noise_power);
    }

    #[test]
    fn signal_power_recovers_the_tone() {
        let n = 1 << 14;
        let amp = 0.5;
        let x = tone(n, 11, amp);
        let s = spectrum(&modulate(2, &x).unwrap());
        let fom = sigma_delta_fom(&s, 11, amp, 64).unwrap();
        let expect = amp * amp / 2.0;
        assert!(
            (fom.signal_power - expect).abs() < 0.1 * expect,
            "{} vs {expect}",
            fom.signal_power
        );
        assert!(fom.sfdr_db > 20.0);
        assert!(fom.thd_db < -10.0);
        assert!(fom.dr_db > fom.sndr_db); // amp < 1 extrapolates upward
        assert!((fom.enob - (fom.sndr_db - 1.76) / 6.02).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_orders_and_bins() {
        assert!(modulate(3, &[0.0]).is_err());
        assert!(modulate(0, &[0.0]).is_err());
        let s = vec![0.0; 64];
        assert!(sigma_delta_fom(&s, 0, 0.5, 4).is_err());
        assert!(sigma_delta_fom(&s, 40, 0.5, 4).is_err());
        assert!(sigma_delta_fom(&s, 3, 0.0, 4).is_err());
        assert!(sigma_delta_fom(&s, 3, 0.5, 0).is_err());
        assert!(sigma_delta_fom(&[0.0; 4], 1, 0.5, 1).is_err());
    }

    #[test]
    fn modulation_error_is_output_minus_input() {
        let x = tone(256, 3, 0.4);
        let y = modulate(1, &x).unwrap();
        let e = modulation_error(1, &x).unwrap();
        for i in 0..x.len() {
            assert_eq!(e[i], y[i] - x[i]);
        }
    }
}
