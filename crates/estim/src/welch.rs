//! Welch PSD estimation of recorded traces, in the workspace's
//! `NoisePsd { bins, mean }` source convention.
//!
//! The estimator detrends the trace (subtracts the sample mean) before
//! segmenting, so the returned `bins` describe the **zero-mean** part of
//! the signal and the DC component travels separately as `mean` — exactly
//! how the analytic propagation machinery splits every other source. Total
//! estimated power then satisfies Parseval against the *sample variance*:
//! `sum(bins) ~= E[(x - mean)^2]`.

use psdacc_dsp::Window;

use crate::EstimError;

/// Spectral window selection for [`welch_psd`] / [`crate::cross_psd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WelchWindow {
    Rectangular,
    Hann,
    Hamming,
    Blackman,
    /// Kaiser window with shape parameter `beta` (typ. 5–12; larger beta,
    /// lower sidelobes, wider main lobe).
    Kaiser(f64),
}

impl WelchWindow {
    /// Parse a window by name. `beta` is required for `kaiser` and
    /// rejected for every other window.
    pub fn parse(name: &str, beta: Option<f64>) -> Result<Self, EstimError> {
        let bad = |detail: String| EstimError::BadParam { param: "window", detail };
        let w = match name {
            "rect" | "rectangular" => WelchWindow::Rectangular,
            "hann" => WelchWindow::Hann,
            "hamming" => WelchWindow::Hamming,
            "blackman" => WelchWindow::Blackman,
            "kaiser" => {
                let beta =
                    beta.ok_or_else(|| bad("kaiser window needs a `beta` parameter".to_string()))?;
                if !beta.is_finite() || !(0.0..=64.0).contains(&beta) {
                    return Err(EstimError::BadParam {
                        param: "beta",
                        detail: format!("kaiser beta must be finite in [0, 64], got {beta}"),
                    });
                }
                return Ok(WelchWindow::Kaiser(beta));
            }
            other => {
                return Err(bad(format!(
                    "unknown window `{other}` (known: rect, hann, hamming, blackman, kaiser)"
                )))
            }
        };
        if beta.is_some() {
            return Err(bad(format!("`beta` only applies to the kaiser window, not `{name}`")));
        }
        Ok(w)
    }

    /// Canonical name (the one [`WelchWindow::parse`] accepts).
    pub fn name(&self) -> &'static str {
        match self {
            WelchWindow::Rectangular => "rect",
            WelchWindow::Hann => "hann",
            WelchWindow::Hamming => "hamming",
            WelchWindow::Blackman => "blackman",
            WelchWindow::Kaiser(_) => "kaiser",
        }
    }

    fn to_dsp(self) -> Window {
        match self {
            WelchWindow::Rectangular => Window::Rectangular,
            WelchWindow::Hann => Window::Hann,
            WelchWindow::Hamming => Window::Hamming,
            WelchWindow::Blackman => Window::Blackman,
            WelchWindow::Kaiser(beta) => Window::Kaiser(beta),
        }
    }
}

/// Welch estimator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WelchConfig {
    /// Segment length = FFT size = number of output bins. Power of two in
    /// `[MIN_NFFT, MAX_NFFT]`.
    pub nfft: usize,
    /// Segment overlap as a fraction of `nfft`, in `[0, MAX_OVERLAP]`.
    pub overlap: f64,
    pub window: WelchWindow,
}

/// Smallest accepted segment length.
pub const MIN_NFFT: usize = 8;
/// Largest accepted segment length (matches the evaluation grid ceiling).
pub const MAX_NFFT: usize = 1 << 14;
/// Largest accepted segment overlap fraction.
pub const MAX_OVERLAP: f64 = 0.95;
/// Longest accepted trace (wire/spec safety limit, shared with `GraphSpec`).
pub const MAX_TRACE_SAMPLES: usize = 1 << 16;

impl Default for WelchConfig {
    fn default() -> Self {
        WelchConfig { nfft: 256, overlap: 0.5, window: WelchWindow::Hann }
    }
}

impl WelchConfig {
    /// Validate parameter ranges (shared by the auto- and cross-spectrum
    /// estimators).
    pub fn validate(&self) -> Result<(), EstimError> {
        if self.nfft < MIN_NFFT || self.nfft > MAX_NFFT || !self.nfft.is_power_of_two() {
            return Err(EstimError::BadParam {
                param: "nfft",
                detail: format!(
                    "segment length must be a power of two in [{MIN_NFFT}, {MAX_NFFT}], got {}",
                    self.nfft
                ),
            });
        }
        if !self.overlap.is_finite() || !(0.0..=MAX_OVERLAP).contains(&self.overlap) {
            return Err(EstimError::BadParam {
                param: "overlap",
                detail: format!("overlap must be in [0, {MAX_OVERLAP}], got {}", self.overlap),
            });
        }
        if let WelchWindow::Kaiser(beta) = self.window {
            if !beta.is_finite() || !(0.0..=64.0).contains(&beta) {
                return Err(EstimError::BadParam {
                    param: "beta",
                    detail: format!("kaiser beta must be finite in [0, 64], got {beta}"),
                });
            }
        }
        Ok(())
    }
}

/// Validate a raw trace: non-empty, bounded length, all samples finite.
pub fn validate_trace(x: &[f64]) -> Result<(), EstimError> {
    if x.is_empty() {
        return Err(EstimError::BadTrace { detail: "trace is empty".to_string() });
    }
    if x.len() > MAX_TRACE_SAMPLES {
        return Err(EstimError::BadTrace {
            detail: format!("trace has {} samples, limit is {MAX_TRACE_SAMPLES}", x.len()),
        });
    }
    if let Some(i) = x.iter().position(|v| !v.is_finite()) {
        return Err(EstimError::BadTrace {
            detail: format!("sample {i} is not finite ({})", x[i]),
        });
    }
    Ok(())
}

/// A Welch-estimated PSD in the workspace source convention: `bins` is a
/// two-sided bin-mass spectrum of the **zero-mean** signal part
/// (`sum(bins) ~= sample variance`), `mean` is the sample mean (DC), and
/// `segments` records how many overlapping segments were averaged.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatedPsd {
    pub bins: Vec<f64>,
    pub mean: f64,
    pub segments: usize,
}

impl EstimatedPsd {
    /// Total estimated power of the zero-mean part (Parseval side of the
    /// estimate).
    pub fn power(&self) -> f64 {
        self.bins.iter().sum()
    }
}

pub(crate) fn segment_count(n: usize, nfft: usize, overlap: f64) -> usize {
    if n < nfft {
        return 1;
    }
    let hop = ((nfft as f64) * (1.0 - overlap)).round().max(1.0) as usize;
    (n - nfft) / hop + 1
}

/// Welch's method over a recorded trace.
///
/// The trace is detrended (sample mean removed) so the DC component is
/// reported separately in [`EstimatedPsd::mean`]; the windowed overlapping
/// segment average is bias-corrected by the window's power (`sum(w^2)`)
/// so flat noise estimates stay unbiased regardless of window choice.
/// Deterministic: same trace and config, bit-identical estimate.
pub fn welch_psd(x: &[f64], cfg: &WelchConfig) -> Result<EstimatedPsd, EstimError> {
    let _frame = psdacc_obs::profile::frame("estim.welch");
    cfg.validate()?;
    validate_trace(x)?;
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    let detrended: Vec<f64> = x.iter().map(|v| v - mean).collect();
    let bins = psdacc_dsp::welch(&detrended, cfg.nfft, cfg.overlap, cfg.window.to_dsp());
    Ok(EstimatedPsd { bins, mean, segments: segment_count(x.len(), cfg.nfft, cfg.overlap) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdacc_dsp::SignalGenerator;

    #[test]
    fn parse_round_trips_names() {
        for name in ["rect", "hann", "hamming", "blackman"] {
            let w = WelchWindow::parse(name, None).unwrap();
            assert_eq!(w.name(), if name == "rect" { "rect" } else { name });
        }
        let k = WelchWindow::parse("kaiser", Some(8.6)).unwrap();
        assert_eq!(k, WelchWindow::Kaiser(8.6));
        assert!(WelchWindow::parse("kaiser", None).is_err());
        assert!(WelchWindow::parse("hann", Some(1.0)).is_err());
        assert!(WelchWindow::parse("boxcar", None).is_err());
    }

    #[test]
    fn welch_splits_mean_from_bins() {
        let mut gen = SignalGenerator::new(11);
        let mut x = gen.uniform_white(1 << 14, 1.0);
        for v in &mut x {
            *v += 3.25;
        }
        let est = welch_psd(&x, &WelchConfig::default()).unwrap();
        assert!((est.mean - 3.25).abs() < 0.02);
        // Variance of uniform on [-0.5, 0.5] is 1/12.
        let sigma2 = 1.0 / 12.0;
        assert!((est.power() - sigma2).abs() < 0.05 * sigma2, "{}", est.power());
        // DC of the detrended signal is (numerically) gone: the bins hold
        // only the fluctuation spectrum.
        assert!(est.bins[0] < 2.0 * est.bins[1].max(est.bins[est.bins.len() - 1]));
    }

    #[test]
    fn welch_white_noise_is_flat_with_kaiser() {
        let mut gen = SignalGenerator::new(7);
        let x = gen.uniform_white(1 << 15, 1.0);
        let cfg = WelchConfig { nfft: 64, overlap: 0.5, window: WelchWindow::Kaiser(8.0) };
        let est = welch_psd(&x, &cfg).unwrap();
        let expect = (1.0 / 12.0) / 64.0;
        for (k, &v) in est.bins.iter().enumerate().skip(1) {
            assert!((v - expect).abs() < 0.25 * expect, "bin {k}: {v} vs {expect}");
        }
    }

    #[test]
    fn welch_is_deterministic() {
        let mut gen = SignalGenerator::new(3);
        let x = gen.uniform_white(4096, 1.0);
        let a = welch_psd(&x, &WelchConfig::default()).unwrap();
        let b = welch_psd(&x, &WelchConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_params_and_traces() {
        let x = vec![0.0; 64];
        let bad_nfft = WelchConfig { nfft: 48, ..WelchConfig::default() };
        assert!(matches!(
            welch_psd(&x, &bad_nfft),
            Err(EstimError::BadParam { param: "nfft", .. })
        ));
        let bad_ov = WelchConfig { overlap: 0.99, ..WelchConfig::default() };
        assert!(matches!(
            welch_psd(&x, &bad_ov),
            Err(EstimError::BadParam { param: "overlap", .. })
        ));
        assert!(matches!(
            welch_psd(&[], &WelchConfig::default()),
            Err(EstimError::BadTrace { .. })
        ));
        assert!(matches!(
            welch_psd(&[1.0, f64::NAN], &WelchConfig::default()),
            Err(EstimError::BadTrace { .. })
        ));
    }

    #[test]
    fn segment_count_matches_hop_arithmetic() {
        assert_eq!(segment_count(256, 256, 0.5), 1);
        assert_eq!(segment_count(512, 256, 0.5), 3);
        assert_eq!(segment_count(512, 256, 0.0), 2);
        assert_eq!(segment_count(100, 256, 0.5), 1);
    }
}
