//! Content-addressed storage for recorded traces.
//!
//! A trace's identity is a dual-FNV-1a 128-bit hash over the **exact f64
//! bit patterns** (little-endian, length-pinned) — the same
//! identity-by-content discipline the engine uses for `GraphSpec` graphs.
//! `GraphSpec` measured nodes can then reference a blob as
//! `"trace": "<hash>"` instead of inlining thousands of samples; the
//! client resolves the reference from a [`TraceStore`] directory before
//! the spec is canonicalized, so daemons stay stateless and the canonical
//! wire form (inline samples) is identical no matter how the trace was
//! supplied.
//!
//! File format (`<hash>.trace`): magic `PSDTRACE1\n`, sample count, one
//! `{:e}` float per line, and a trailing checksum line (the content hash
//! again) so truncation and corruption are detected on load.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use crate::EstimError;

const MAGIC: &str = "PSDTRACE1";

fn fnv1a(bytes: impl Iterator<Item = u8>, basis: u64, prime: u64) -> u64 {
    let mut h = basis;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(prime);
    }
    h
}

/// Content hash of a trace: 32 hex chars from two independent FNV-1a
/// passes over the little-endian f64 bit patterns, with the sample count
/// pinned into the stream (so prefixes do not collide).
pub fn trace_hash(samples: &[f64]) -> String {
    let stream = || {
        (samples.len() as u64)
            .to_le_bytes()
            .into_iter()
            .chain(samples.iter().flat_map(|v| v.to_bits().to_le_bytes()))
    };
    let a = fnv1a(stream(), 0xcbf2_9ce4_8422_2325, 0x0000_0100_0000_01b3);
    let b = fnv1a(stream(), 0x6c62_272e_07bb_0142, 0x0000_0100_0000_01b3 ^ 0x5bd1_e995);
    format!("{a:016x}{b:016x}")
}

/// A directory of content-addressed trace blobs.
#[derive(Debug, Clone)]
pub struct TraceStore {
    dir: PathBuf,
}

impl TraceStore {
    /// Open (creating if needed) a trace directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(TraceStore { dir })
    }

    fn path(&self, hash: &str) -> PathBuf {
        self.dir.join(format!("{hash}.trace"))
    }

    /// Persist a trace; returns its content hash. Idempotent: saving the
    /// same samples twice writes the same file once.
    pub fn save(&self, samples: &[f64]) -> std::io::Result<String> {
        let hash = trace_hash(samples);
        let path = self.path(&hash);
        if path.exists() {
            return Ok(hash);
        }
        let mut body = String::with_capacity(16 + samples.len() * 16);
        body.push_str(MAGIC);
        body.push('\n');
        body.push_str(&samples.len().to_string());
        body.push('\n');
        for v in samples {
            body.push_str(&format!("{v:e}\n"));
        }
        body.push_str(&hash);
        body.push('\n');
        let tmp = self.dir.join(format!(".{hash}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(hash)
    }

    /// Load a trace by hash, verifying the embedded checksum against the
    /// requested hash (corruption and truncation are both detected).
    pub fn load(&self, hash: &str) -> Result<Vec<f64>, EstimError> {
        let path = self.path(hash);
        let corrupt =
            |detail: String| EstimError::BadTrace { detail: format!("trace {hash}: {detail}") };
        let body = fs::read_to_string(&path).map_err(|e| corrupt(format!("unreadable ({e})")))?;
        let mut lines = body.lines();
        if lines.next() != Some(MAGIC) {
            return Err(corrupt("bad magic".to_string()));
        }
        let count: usize = lines
            .next()
            .and_then(|l| l.parse().ok())
            .ok_or_else(|| corrupt("bad sample count".to_string()))?;
        let mut samples = Vec::with_capacity(count);
        for i in 0..count {
            let line = lines.next().ok_or_else(|| corrupt(format!("truncated at sample {i}")))?;
            let v: f64 = line.parse().map_err(|_| corrupt(format!("bad sample {i}: `{line}`")))?;
            samples.push(v);
        }
        let check = lines.next().ok_or_else(|| corrupt("missing checksum".to_string()))?;
        let actual = trace_hash(&samples);
        if check != actual || actual != hash {
            return Err(corrupt(format!("checksum mismatch (stored {check}, actual {actual})")));
        }
        Ok(samples)
    }

    /// List the hashes of every stored trace (sorted, deterministic).
    pub fn list(&self) -> std::io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(hash) = name.strip_suffix(".trace") {
                out.push(hash.to_string());
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("psdacc-estim-trace-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn hash_is_bit_pattern_sensitive() {
        let a = trace_hash(&[1.0, 2.0]);
        let b = trace_hash(&[1.0, f64::from_bits(2.0f64.to_bits() + 1)]);
        let c = trace_hash(&[1.0, 2.0, 0.0]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, trace_hash(&[1.0, 2.0]));
        assert_eq!(a.len(), 32);
        // -0.0 and 0.0 are different bit patterns, hence different traces.
        assert_ne!(trace_hash(&[0.0]), trace_hash(&[-0.0]));
    }

    #[test]
    fn save_load_round_trips_exactly() {
        let store = TraceStore::open(tmpdir("roundtrip")).unwrap();
        let samples = vec![0.1, -2.5e-17, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0];
        let hash = store.save(&samples).unwrap();
        let loaded = store.load(&hash).unwrap();
        assert_eq!(samples.len(), loaded.len());
        for (a, b) in samples.iter().zip(&loaded) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exact round trip");
        }
        assert_eq!(store.save(&samples).unwrap(), hash);
        assert_eq!(store.list().unwrap(), vec![hash]);
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmpdir("corrupt");
        let store = TraceStore::open(&dir).unwrap();
        let hash = store.save(&[1.0, 2.0, 3.0]).unwrap();
        let path = dir.join(format!("{hash}.trace"));
        let body = fs::read_to_string(&path).unwrap();
        // Flip a sample: checksum no longer matches.
        fs::write(&path, body.replace("2e0", "2.5e0")).unwrap();
        assert!(matches!(store.load(&hash), Err(EstimError::BadTrace { .. })));
        // Truncation: drop the checksum line.
        let lines: Vec<&str> = body.lines().collect();
        fs::write(&path, lines[..lines.len() - 2].join("\n")).unwrap();
        assert!(matches!(store.load(&hash), Err(EstimError::BadTrace { .. })));
        // Missing file.
        assert!(store.load("feedfacefeedfacefeedfacefeedface").is_err());
    }
}
