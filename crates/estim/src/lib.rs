//! # psdacc-estim
//!
//! Measured-signal PSD estimation: the bridge from **recorded sample
//! traces** to the analytic PSD-propagation machinery of the rest of the
//! workspace.
//!
//! All other noise sources in the stack are analytic (quantization moments
//! derived from word-length plans). This crate turns *measurements* into
//! sources:
//!
//! * [`welch_psd`] — Welch's method (windowed overlapping segments,
//!   bias-corrected averaging) over a recorded trace, split into a mean
//!   (DC) component and zero-mean spectral bins so the result drops
//!   straight into the workspace's `NoisePsd { bins, mean }` convention,
//! * [`cross_psd`] — two-channel cross-spectrum estimation: the averaged
//!   cross-PSD of a common signal seen through two independent-noise
//!   channels converges on the common signal's PSD *below* either
//!   channel's single-channel noise floor,
//! * [`sigma_delta`] — bit-true 1st/2nd-order sigma-delta modulators and
//!   DR/SFDR/THD/SNR/ENOB figures of merit computed from an estimated
//!   spectrum,
//! * [`trace`] — content-addressed storage for recorded traces (dual
//!   FNV-1a over the exact f64 bit patterns, checksummed file codec), so
//!   `GraphSpec` definitions can reference blobs by hash instead of
//!   inlining megabytes of samples,
//! * [`rebin_mass`] — power-preserving rebinning between estimation and
//!   evaluation frequency grids.
//!
//! Everything is deterministic: the estimators are pure functions of their
//! inputs, and the test-signal generators are seeded
//! (`psdacc_dsp::SignalGenerator`), so two daemons that rebuild the same
//! measured scenario produce bit-identical PSDs — the property the fleet's
//! bit-identity proofs rest on.

pub mod cross;
pub mod sigma_delta;
pub mod trace;
pub mod welch;

pub use cross::cross_psd;
pub use sigma_delta::{modulate, SigmaDeltaFom};
pub use trace::{trace_hash, TraceStore};
pub use welch::{welch_psd, EstimatedPsd, WelchConfig, WelchWindow};

use std::fmt;

/// Typed estimation errors (all are input-validation failures; the
/// estimators themselves cannot fail on valid input).
#[derive(Debug, Clone, PartialEq)]
pub enum EstimError {
    /// A numeric or enum parameter is out of its documented range.
    BadParam { param: &'static str, detail: String },
    /// The input trace is unusable (empty, non-finite samples, ...).
    BadTrace { detail: String },
}

impl fmt::Display for EstimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimError::BadParam { param, detail } => {
                write!(f, "bad estimation parameter `{param}`: {detail}")
            }
            EstimError::BadTrace { detail } => write!(f, "bad trace: {detail}"),
        }
    }
}

impl std::error::Error for EstimError {}

/// Power-preserving rebinning of a two-sided bin-mass PSD from one grid
/// size to another.
///
/// Both grids cover normalized frequency `[0, 1)`; each source bin's mass
/// is distributed over the destination bins it overlaps, proportionally to
/// the overlap, so `sum(out) == sum(bins)` up to rounding. With equal
/// sizes this is the identity (bit-exact copy).
///
/// # Panics
///
/// Panics if `npsd == 0`.
pub fn rebin_mass(bins: &[f64], npsd: usize) -> Vec<f64> {
    assert!(npsd > 0, "rebin_mass: npsd must be positive");
    let nfft = bins.len();
    if nfft == npsd {
        return bins.to_vec();
    }
    let mut out = vec![0.0; npsd];
    if nfft == 0 {
        return out;
    }
    // Source bin k covers [k/nfft, (k+1)/nfft); destination bin j covers
    // [j/npsd, (j+1)/npsd). Walk source bins and split each across the
    // destination bins it intersects.
    for (k, &mass) in bins.iter().enumerate() {
        if mass == 0.0 {
            continue;
        }
        let lo = k as f64 / nfft as f64;
        let hi = (k + 1) as f64 / nfft as f64;
        let j0 = (lo * npsd as f64).floor() as usize;
        let j1 = (((hi * npsd as f64).ceil() as usize).max(j0 + 1)).min(npsd);
        let width = hi - lo;
        for (j, slot) in out.iter_mut().enumerate().take(j1).skip(j0) {
            let seg_lo = lo.max(j as f64 / npsd as f64);
            let seg_hi = hi.min((j + 1) as f64 / npsd as f64);
            if seg_hi > seg_lo {
                *slot += mass * ((seg_hi - seg_lo) / width);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebin_identity_is_bit_exact() {
        let bins = vec![0.1, 0.2, 0.3, 0.4];
        assert_eq!(rebin_mass(&bins, 4), bins);
    }

    #[test]
    fn rebin_preserves_total_power() {
        let bins: Vec<f64> = (0..128).map(|k| (k as f64 * 0.37).sin().abs()).collect();
        for npsd in [32, 64, 100, 256, 1000] {
            let out = rebin_mass(&bins, npsd);
            assert_eq!(out.len(), npsd);
            let a: f64 = bins.iter().sum();
            let b: f64 = out.iter().sum();
            assert!((a - b).abs() < 1e-12 * a.max(1.0), "npsd={npsd}: {a} vs {b}");
        }
    }

    #[test]
    fn rebin_upsample_splits_mass_evenly() {
        let out = rebin_mass(&[1.0, 3.0], 4);
        assert!((out[0] - 0.5).abs() < 1e-15);
        assert!((out[1] - 0.5).abs() < 1e-15);
        assert!((out[2] - 1.5).abs() < 1e-15);
        assert!((out[3] - 1.5).abs() < 1e-15);
    }
}
