//! Two-channel cross-spectrum estimation ("the cross-spectrum
//! experimental method").
//!
//! Two instruments observe the same signal `s` through independent noise
//! channels: `a = s + n_a`, `b = s + n_b`. The averaged cross-PSD
//! `E[conj(A) B] = S_ss + cross terms` converges on `S_ss` because the
//! independent-noise cross terms average toward zero like
//! `1/sqrt(segments)` — the estimate drops **below the single-channel
//! noise floor** `S_ss + S_nn` that either channel alone is stuck at.

use crate::welch::{segment_count, validate_trace, EstimatedPsd, WelchConfig};
use crate::EstimError;

/// Cross-spectrum estimate of the common signal seen by two channels.
///
/// Returns the per-bin real part of the averaged cross-PSD, clamped at
/// zero (a PSD is non-negative; residual negative excursions are
/// estimator noise). Both traces are detrended with their own sample
/// means; the reported `mean` is the average of the two channel means
/// (both estimate the common signal's DC). Deterministic for fixed inputs.
pub fn cross_psd(a: &[f64], b: &[f64], cfg: &WelchConfig) -> Result<EstimatedPsd, EstimError> {
    let _frame = psdacc_obs::profile::frame("estim.cross");
    cfg.validate()?;
    validate_trace(a)?;
    validate_trace(b)?;
    if a.len() != b.len() {
        return Err(EstimError::BadTrace {
            detail: format!("channel lengths differ: {} vs {}", a.len(), b.len()),
        });
    }
    let mean_a = a.iter().sum::<f64>() / a.len() as f64;
    let mean_b = b.iter().sum::<f64>() / b.len() as f64;
    let da: Vec<f64> = a.iter().map(|v| v - mean_a).collect();
    let db: Vec<f64> = b.iter().map(|v| v - mean_b).collect();
    let window = match cfg.window {
        crate::WelchWindow::Rectangular => psdacc_dsp::Window::Rectangular,
        crate::WelchWindow::Hann => psdacc_dsp::Window::Hann,
        crate::WelchWindow::Hamming => psdacc_dsp::Window::Hamming,
        crate::WelchWindow::Blackman => psdacc_dsp::Window::Blackman,
        crate::WelchWindow::Kaiser(beta) => psdacc_dsp::Window::Kaiser(beta),
    };
    let cross = psdacc_dsp::welch_cross(&da, &db, cfg.nfft, cfg.overlap, window);
    let bins: Vec<f64> = cross.iter().map(|c| c.re.max(0.0)).collect();
    Ok(EstimatedPsd {
        bins,
        mean: 0.5 * (mean_a + mean_b),
        segments: segment_count(a.len(), cfg.nfft, cfg.overlap),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WelchWindow;
    use psdacc_dsp::SignalGenerator;

    fn two_channels(n: usize, seed: u64, noise_sigma: f64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut gen = SignalGenerator::new(seed);
        let common = gen.ar1(n, 0.9, 0.1);
        let na = gen.gaussian_white(n, noise_sigma);
        let nb = gen.gaussian_white(n, noise_sigma);
        let a: Vec<f64> = common.iter().zip(&na).map(|(s, n)| s + n).collect();
        let b: Vec<f64> = common.iter().zip(&nb).map(|(s, n)| s + n).collect();
        (common, a, b)
    }

    #[test]
    fn cross_estimate_rejects_channel_noise() {
        let n = 1 << 16;
        let nfft = 64;
        let cfg = WelchConfig { nfft, overlap: 0.5, window: WelchWindow::Hann };
        let (common, a, b) = two_channels(n, 42, 1.0);
        let cross = cross_psd(&a, &b, &cfg).unwrap();
        let single = crate::welch_psd(&a, &cfg).unwrap();
        let truth = crate::welch_psd(&common, &cfg).unwrap();
        // Channel noise is strong: the single-channel floor sits far above
        // the common-signal PSD at high frequency, the cross estimate does
        // not. Compare total high-band power (top half of bins, where the
        // AR(1) common signal is weakest).
        let hi = |s: &EstimatedPsd| s.bins[nfft / 4..3 * nfft / 4].iter().sum::<f64>();
        let floor = hi(&single);
        let denoised = hi(&cross);
        let target = hi(&truth);
        assert!(floor > 5.0 * target, "noise floor should dominate: {floor} vs {target}");
        assert!(
            denoised < 0.4 * floor,
            "cross estimate should drop below the single-channel floor: {denoised} vs {floor}"
        );
    }

    #[test]
    fn cross_of_identical_channels_is_auto_psd() {
        let mut gen = SignalGenerator::new(5);
        let x = gen.uniform_white(1 << 13, 1.0);
        let cfg = WelchConfig::default();
        let cross = cross_psd(&x, &x, &cfg).unwrap();
        let auto = crate::welch_psd(&x, &cfg).unwrap();
        for k in 0..cfg.nfft {
            assert!((cross.bins[k] - auto.bins[k]).abs() < 1e-12, "bin {k}");
        }
        assert!((cross.mean - auto.mean).abs() < 1e-15);
    }

    #[test]
    fn cross_rejects_mismatched_lengths() {
        let cfg = WelchConfig::default();
        assert!(matches!(
            cross_psd(&[1.0; 64], &[1.0; 65], &cfg),
            Err(EstimError::BadTrace { .. })
        ));
    }
}
