//! # psdacc-sim
//!
//! Bit-true fixed-point simulation engine for the `psdacc` workspace (DATE
//! 2016 PSD accuracy-evaluation reproduction). This is the paper's
//! "simulation" column: the ground truth every analytical estimate is judged
//! against (Eq. 15).
//!
//! * [`SfgSimulator`] — sample-synchronous execution of a single-rate
//!   signal-flow graph, with optional per-node [`psdacc_fixed::Quantizer`]s
//!   and impulse-injection probes (used by the flat analytical method),
//! * [`measure_quantization_error`] — Monte-Carlo reference-vs-quantized
//!   error measurement with PSD capture,
//! * [`ErrorMeasurement`] — moments + spectrum of the measured error.

pub mod engine;
pub mod executor;
pub mod measure;
pub mod runner;

pub use engine::SfgSimulator;
pub use executor::BlockExec;
pub use measure::ErrorMeasurement;
pub use runner::{
    measure_quantization_error, measure_quantization_error_with_input, SimulationPlan,
};
