//! Per-block stateful executors.

use std::collections::VecDeque;

use psdacc_filters::{FirState, IirState};
use psdacc_fixed::Quantizer;
use psdacc_sfg::Block;

/// Direct-form-I IIR with the *quantized* output fed back through the
/// recursion — the realizable fixed-point structure. The quantization noise
/// injected at the output adder therefore recirculates through `1/A(z)`,
/// which is exactly the shaping the paper attributes to "the recursive
/// nature" of IIR filters (Section IV-B).
#[derive(Debug, Clone)]
pub struct QuantIirState {
    b: Vec<f64>,
    a: Vec<f64>,
    x_hist: VecDeque<f64>,
    y_hist: VecDeque<f64>,
    quantizer: Quantizer,
}

impl QuantIirState {
    fn new(b: &[f64], a: &[f64], quantizer: Quantizer) -> Self {
        QuantIirState {
            b: b.to_vec(),
            a: a.to_vec(),
            x_hist: VecDeque::from(vec![0.0; b.len()]),
            y_hist: VecDeque::from(vec![0.0; a.len().saturating_sub(1)]),
            quantizer,
        }
    }

    fn push(&mut self, x: f64) -> f64 {
        self.x_hist.push_front(x);
        self.x_hist.pop_back();
        let ff: f64 = self.b.iter().zip(&self.x_hist).map(|(c, v)| c * v).sum();
        let fb: f64 = self.a.iter().skip(1).zip(&self.y_hist).map(|(c, v)| c * v).sum();
        let y = self.quantizer.quantize(ff - fb);
        if !self.y_hist.is_empty() {
            self.y_hist.push_front(y);
            self.y_hist.pop_back();
        }
        y
    }

    fn reset(&mut self) {
        self.x_hist.iter_mut().for_each(|v| *v = 0.0);
        self.y_hist.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Runtime state for one block instance.
#[derive(Debug, Clone)]
pub enum BlockExec {
    /// Input port: emits the externally supplied sample.
    Input,
    /// Constant gain.
    Gain(f64),
    /// Pure delay line (front = oldest).
    Delay(VecDeque<f64>),
    /// FIR filter state.
    Fir(FirState),
    /// IIR filter state (full-precision direct-form II transposed).
    Iir(IirState),
    /// Fixed-point IIR: quantized output recirculates (direct form I).
    QuantIir(QuantIirState),
    /// N-ary adder (stateless).
    Add,
    /// Decimator: fires only on every `M`-th input sample (the simulator
    /// schedules it), where it passes the input through unchanged.
    Downsample,
    /// Expander: fires `L` times per input sample; emits the input on the
    /// first firing of each group and the `L - 1` stuffed zeros after.
    Upsample {
        /// Expansion factor.
        l: usize,
        /// Firings since the last input sample (0 = fresh input).
        phase: usize,
    },
}

impl BlockExec {
    /// Instantiates the executor for a block.
    ///
    /// When `quantizer` is supplied and the block is an IIR filter, the
    /// bit-true [`BlockExec::QuantIir`] structure (quantized feedback) is
    /// used instead of the reference form.
    pub fn from_block(block: &Block) -> Self {
        Self::from_block_quantized(block, None)
    }

    /// Instantiates the executor, selecting the quantized realization where
    /// one exists.
    pub fn from_block_quantized(block: &Block, quantizer: Option<Quantizer>) -> Self {
        match (block, quantizer) {
            (Block::Iir(f), Some(q)) => BlockExec::QuantIir(QuantIirState::new(f.b(), f.a(), q)),
            (Block::Input, _) => BlockExec::Input,
            (Block::Gain(g), _) => BlockExec::Gain(*g),
            (Block::Delay(k), _) => BlockExec::Delay(VecDeque::from(vec![0.0; *k])),
            (Block::Fir(f), _) => BlockExec::Fir(f.stream()),
            (Block::Iir(f), None) => BlockExec::Iir(f.stream()),
            (Block::Add, _) => BlockExec::Add,
            // Measured sources exist for PSD evaluation, not simulation:
            // the evaluator refuses to simulate graphs containing them, so
            // this executor only ever sees the zero external drive (it
            // behaves as a silent input port).
            (Block::Measured(_), _) => BlockExec::Input,
            (Block::Downsample(_), _) => BlockExec::Downsample,
            (Block::Upsample(l), _) => BlockExec::Upsample { l: (*l).max(1), phase: 0 },
        }
    }

    /// `true` for delay blocks, whose output is read *before* the current
    /// input is pushed (two-phase execution).
    pub fn is_delay(&self) -> bool {
        matches!(self, BlockExec::Delay(_))
    }

    /// Computes the block output for the current time step.
    ///
    /// For delays this *peeks* the stored state; the current input is pushed
    /// separately by [`BlockExec::commit_delay`] once all node values for the
    /// step are known.
    pub fn step(&mut self, input_sum: f64, external: f64) -> f64 {
        match self {
            BlockExec::Input => external,
            BlockExec::Gain(g) => *g * input_sum,
            BlockExec::Delay(buf) => buf.front().copied().unwrap_or(input_sum),
            BlockExec::Fir(s) => s.push(input_sum),
            BlockExec::Iir(s) => s.push(input_sum),
            BlockExec::QuantIir(s) => s.push(input_sum),
            BlockExec::Add => input_sum,
            BlockExec::Downsample => input_sum,
            BlockExec::Upsample { l, phase } => {
                let emit = if *phase == 0 { input_sum } else { 0.0 };
                *phase = (*phase + 1) % *l;
                emit
            }
        }
    }

    /// Second phase for delays: pushes the now-known current input and drops
    /// the emitted sample.
    pub fn commit_delay(&mut self, input: f64) {
        if let BlockExec::Delay(buf) = self {
            if !buf.is_empty() {
                buf.pop_front();
                buf.push_back(input);
            }
        }
    }

    /// Resets all internal state to zero.
    pub fn reset(&mut self) {
        match self {
            BlockExec::Delay(buf) => buf.iter_mut().for_each(|v| *v = 0.0),
            BlockExec::Fir(s) => s.reset(),
            BlockExec::Iir(s) => s.reset(),
            BlockExec::QuantIir(s) => s.reset(),
            BlockExec::Upsample { phase, .. } => *phase = 0,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdacc_filters::Fir;

    #[test]
    fn gain_and_add() {
        let mut g = BlockExec::from_block(&Block::Gain(3.0));
        assert_eq!(g.step(2.0, 0.0), 6.0);
        let mut a = BlockExec::from_block(&Block::Add);
        assert_eq!(a.step(5.0, 0.0), 5.0);
    }

    #[test]
    fn delay_two_phase() {
        let mut d = BlockExec::from_block(&Block::Delay(2));
        assert!(d.is_delay());
        // t=0: emits initial zero, then stores 1.0
        assert_eq!(d.step(0.0, 0.0), 0.0);
        d.commit_delay(1.0);
        // t=1: still zero (delay 2)
        assert_eq!(d.step(0.0, 0.0), 0.0);
        d.commit_delay(2.0);
        // t=2: the first pushed value appears
        assert_eq!(d.step(0.0, 0.0), 1.0);
        d.commit_delay(3.0);
        assert_eq!(d.step(0.0, 0.0), 2.0);
    }

    #[test]
    fn zero_length_delay_passthrough() {
        // Delay(0) behaves as a wire (degenerate but defined).
        let mut d = BlockExec::from_block(&Block::Delay(0));
        assert_eq!(d.step(7.0, 0.0), 7.0);
        d.commit_delay(7.0);
        assert_eq!(d.step(9.0, 0.0), 9.0);
    }

    #[test]
    fn fir_exec_matches_filter() {
        let f = Fir::new(vec![0.5, -0.5]);
        let mut e = BlockExec::from_block(&Block::Fir(f.clone()));
        let x = [1.0, 2.0, 3.0];
        let want = f.filter(&x);
        for (i, &v) in x.iter().enumerate() {
            assert!((e.step(v, 0.0) - want[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut d = BlockExec::from_block(&Block::Delay(1));
        d.step(0.0, 0.0);
        d.commit_delay(9.0);
        d.reset();
        assert_eq!(d.step(0.0, 0.0), 0.0);
    }

    #[test]
    fn input_emits_external() {
        let mut i = BlockExec::from_block(&Block::Input);
        assert_eq!(i.step(0.0, 3.25), 3.25);
    }
}
