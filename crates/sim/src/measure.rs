//! Error-signal measurement results.

use psdacc_dsp::{welch, RunningStats, Window};

/// Statistics of a fixed-point error signal measured by simulation.
#[derive(Debug, Clone)]
pub struct ErrorMeasurement {
    /// Mean error `E[e]`.
    pub mean: f64,
    /// Error variance.
    pub variance: f64,
    /// Total error power `E[e^2]` — the quantity of the paper's Eq. 15
    /// denominator.
    pub power: f64,
    /// Two-sided bin-mass PSD of the error (see `psdacc-dsp` conventions).
    pub psd: Vec<f64>,
    /// Number of samples measured.
    pub samples: usize,
}

impl ErrorMeasurement {
    /// Computes statistics of an error signal, with a Welch PSD on `nfft`
    /// bins (Hann window, 50% overlap).
    pub fn from_error_signal(err: &[f64], nfft: usize) -> Self {
        let mut stats = RunningStats::new();
        stats.extend(err);
        ErrorMeasurement {
            mean: stats.mean(),
            variance: stats.variance(),
            power: stats.power(),
            psd: welch(err, nfft, 0.5, Window::Hann),
            samples: err.len(),
        }
    }

    /// Signal-to-quantization-noise ratio in dB given the reference signal
    /// power.
    pub fn sqnr_db(&self, signal_power: f64) -> f64 {
        10.0 * (signal_power / self.power).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_hand_computation() {
        let err = [0.5, -0.5, 0.5, -0.5];
        let m = ErrorMeasurement::from_error_signal(&err, 4);
        assert_eq!(m.mean, 0.0);
        assert_eq!(m.power, 0.25);
        assert_eq!(m.variance, 0.25);
        assert_eq!(m.samples, 4);
    }

    #[test]
    fn psd_power_tracks_total_power() {
        let err: Vec<f64> = (0..4096).map(|i| ((i * 37 % 101) as f64 / 101.0) - 0.5).collect();
        let m = ErrorMeasurement::from_error_signal(&err, 128);
        let psd_total: f64 = m.psd.iter().sum();
        assert!((psd_total - m.power).abs() < 0.05 * m.power);
    }

    #[test]
    fn sqnr() {
        let err = [0.1, -0.1];
        let m = ErrorMeasurement::from_error_signal(&err, 2);
        // signal power 1.0, noise power 0.01 -> 20 dB.
        assert!((m.sqnr_db(1.0) - 20.0).abs() < 1e-9);
    }
}
