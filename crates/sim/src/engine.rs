//! Sample-synchronous execution of a signal-flow graph, with optional
//! per-node quantization.
//!
//! Two instances of [`SfgSimulator`] — one with quantizers, one without —
//! driven by the same input realize the paper's "simulation" reference: the
//! difference of their outputs is the fixed-point error signal whose power
//! and PSD the analytical methods predict.
//!
//! # Multirate execution
//!
//! Graphs containing `Downsample` / `Upsample` blocks run on one global
//! clock at the input rate. Every node is assigned a firing period `p`
//! (the reciprocal of its [`psdacc_sfg::multirate`] rate): the node
//! computes only on steps where `tick % p == 0` and holds its last value in
//! between. Same-rate consumers co-fire with their producers, decimators
//! fire on a subset of producer firings (keeping every `M`-th sample), and
//! expanders fire `L` times per producer firing, emitting the fresh sample
//! once and zeros otherwise — exact zero-stuffing. Delays and filter states
//! advance in *local* samples. Rates faster than the external input (a
//! non-integer period) are rejected: they would need sub-steps of the
//! input clock.

use psdacc_fixed::Quantizer;
use psdacc_sfg::{execution_order, multirate, NodeId, Sfg, SfgError};

use crate::executor::BlockExec;

/// A bit-true (or reference, when no quantizers are attached) executor for
/// a signal-flow graph (single-rate or decimating multirate).
#[derive(Debug, Clone)]
pub struct SfgSimulator {
    order: Vec<NodeId>,
    inputs_of: Vec<Vec<NodeId>>,
    input_ports: Vec<NodeId>,
    outputs: Vec<NodeId>,
    execs: Vec<BlockExec>,
    quantizers: Vec<Option<Quantizer>>,
    values: Vec<f64>,
    injections: Vec<f64>,
    /// Firing period per node, in input-rate ticks (all 1 on single-rate
    /// graphs).
    periods: Vec<u64>,
    tick: u64,
}

impl SfgSimulator {
    /// Builds a simulator. `quantizers[node]` (if any) snaps that node's
    /// output to a fixed-point grid after every step.
    ///
    /// # Errors
    ///
    /// [`SfgError::DelayFreeCycle`] if the graph is not realizable;
    /// [`SfgError::RateMismatch`] / [`SfgError::Multirate`] for
    /// inconsistent rates, rate changers in feedback loops, or nodes
    /// running faster than the external input.
    pub fn new(sfg: &Sfg, quantizers: Vec<Option<Quantizer>>) -> Result<Self, SfgError> {
        let order = execution_order(sfg)?;
        let periods = if multirate::is_multirate(sfg) {
            psdacc_sfg::check_realizable(sfg)?;
            multirate::node_rates(sfg)?
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    if r.num() == 1 {
                        Ok(r.den())
                    } else {
                        // Covers both genuinely faster nodes (e.g. rate 2)
                        // and slower-but-fractional ones (e.g. 2/3): either
                        // way the firing period is not a whole number of
                        // input ticks.
                        Err(SfgError::Multirate {
                            detail: format!(
                                "node {:?} runs at rate {r}, which has no integer firing \
                                 period on the input clock",
                                NodeId(i)
                            ),
                        })
                    }
                })
                .collect::<Result<Vec<u64>, SfgError>>()?
        } else {
            vec![1; sfg.len()]
        };
        let mut q = quantizers;
        q.resize(sfg.len(), None);
        Ok(SfgSimulator {
            order,
            inputs_of: sfg.nodes().iter().map(|n| n.inputs.clone()).collect(),
            input_ports: sfg.inputs().to_vec(),
            outputs: sfg.outputs().to_vec(),
            execs: sfg
                .nodes()
                .iter()
                .enumerate()
                .map(|(i, n)| BlockExec::from_block_quantized(&n.block, q[i]))
                .collect(),
            quantizers: q,
            values: vec![0.0; sfg.len()],
            injections: vec![0.0; sfg.len()],
            periods,
            tick: 0,
        })
    }

    /// Builds a full-precision reference simulator (no quantization).
    pub fn reference(sfg: &Sfg) -> Result<Self, SfgError> {
        SfgSimulator::new(sfg, Vec::new())
    }

    /// Adds `value` to the given node's output *for the next step only* —
    /// the unit-impulse probe used by the flat analytical method to extract
    /// path impulse responses.
    pub fn inject(&mut self, node: NodeId, value: f64) {
        self.injections[node.0] += value;
    }

    /// Advances one sample. `external` supplies one value per input port (in
    /// the order they were added).
    ///
    /// Returns the values at the designated output nodes.
    ///
    /// # Panics
    ///
    /// Panics if `external.len()` differs from the number of input ports.
    pub fn step(&mut self, external: &[f64]) -> Vec<f64> {
        assert_eq!(
            external.len(),
            self.input_ports.len(),
            "expected {} input samples",
            self.input_ports.len()
        );
        // Phase 1: compute all node outputs in combinational order. Nodes
        // whose firing period does not divide the current tick are skipped
        // and hold their previous value (only same-or-slower-rate consumers
        // read it, and they co-fire with the producer).
        for &id in &self.order {
            if !self.tick.is_multiple_of(self.periods[id.0]) {
                continue;
            }
            let sum: f64 = self.inputs_of[id.0].iter().map(|p| self.values[p.0]).sum();
            let ext =
                self.input_ports.iter().position(|&p| p == id).map(|i| external[i]).unwrap_or(0.0);
            let mut y = self.execs[id.0].step(sum, ext);
            y += self.injections[id.0];
            self.injections[id.0] = 0.0;
            if let Some(q) = &self.quantizers[id.0] {
                y = q.quantize(y);
            }
            self.values[id.0] = y;
        }
        // Phase 2: commit delay inputs (delays advance in local samples).
        for &id in &self.order {
            if self.execs[id.0].is_delay() && self.tick.is_multiple_of(self.periods[id.0]) {
                let sum: f64 = self.inputs_of[id.0].iter().map(|p| self.values[p.0]).sum();
                self.execs[id.0].commit_delay(sum);
            }
        }
        self.tick += 1;
        self.outputs.iter().map(|o| self.values[o.0]).collect()
    }

    /// Firing period of a node in input-rate ticks (1 on single-rate
    /// graphs).
    pub fn period_of(&self, node: NodeId) -> u64 {
        self.periods[node.0]
    }

    /// Runs a whole multi-channel input (`signals[port][t]`) and collects the
    /// first output.
    ///
    /// # Panics
    ///
    /// Panics if channel lengths differ or no output was designated.
    pub fn run(&mut self, signals: &[Vec<f64>]) -> Vec<f64> {
        assert!(!self.outputs.is_empty(), "no output designated");
        let len = signals.first().map_or(0, Vec::len);
        assert!(signals.iter().all(|s| s.len() == len), "input channels must be equal length");
        let mut buf = vec![0.0; signals.len()];
        (0..len)
            .map(|t| {
                for (i, s) in signals.iter().enumerate() {
                    buf[i] = s[t];
                }
                self.step(&buf)[0]
            })
            .collect()
    }

    /// Current value at any node (after the latest step).
    pub fn value(&self, node: NodeId) -> f64 {
        self.values[node.0]
    }

    /// Resets all state (delay lines, filter states, node values, clock).
    pub fn reset(&mut self) {
        for e in &mut self.execs {
            e.reset();
        }
        self.values.fill(0.0);
        self.injections.fill(0.0);
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdacc_filters::{Fir, Iir, LtiSystem};
    use psdacc_fixed::{Quantizer, RoundingMode};
    use psdacc_sfg::Block;

    #[test]
    fn fir_graph_matches_direct_filter() {
        let fir = Fir::new(vec![0.3, -0.2, 0.1]);
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Fir(fir.clone()), &[x]).unwrap();
        g.mark_output(f);
        let mut sim = SfgSimulator::reference(&g).unwrap();
        let input: Vec<f64> = (0..100).map(|i| (i as f64 * 0.17).sin()).collect();
        let got = sim.run(std::slice::from_ref(&input));
        let want = fir.filter(&input);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn feedback_graph_matches_iir() {
        // y = x + 0.5 y z^-1
        let mut g = Sfg::new();
        let x = g.add_input();
        let add = g.add_block(Block::Add, &[x]).unwrap();
        let gain = g.add_block(Block::Gain(0.5), &[add]).unwrap();
        let delay = g.add_block(Block::Delay(1), &[gain]).unwrap();
        g.set_inputs(add, &[x, delay]).unwrap();
        g.mark_output(add);
        let mut sim = SfgSimulator::reference(&g).unwrap();
        let input: Vec<f64> = (0..64).map(|i| if i == 0 { 1.0 } else { 0.0 }).collect();
        let got = sim.run(&[input]);
        for (n, v) in got.iter().enumerate() {
            assert!((v - 0.5f64.powi(n as i32)).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn iir_block_matches_iir_struct() {
        let iir = Iir::new(vec![0.2, 0.1], vec![1.0, -0.9, 0.25]).unwrap();
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Iir(iir.clone()), &[x]).unwrap();
        g.mark_output(f);
        let mut sim = SfgSimulator::reference(&g).unwrap();
        let input: Vec<f64> = (0..200).map(|i| ((i % 17) as f64 - 8.0) * 0.1).collect();
        let got = sim.run(std::slice::from_ref(&input));
        let want = iir.filter(&input);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn quantizer_applied_at_node() {
        let mut g = Sfg::new();
        let x = g.add_input();
        let gain = g.add_block(Block::Gain(1.0), &[x]).unwrap();
        g.mark_output(gain);
        let mut quant = vec![None; g.len()];
        quant[gain.0] = Some(Quantizer::new(2, RoundingMode::Truncate));
        let mut sim = SfgSimulator::new(&g, quant).unwrap();
        let y = sim.step(&[0.9]);
        assert_eq!(y[0], 0.75);
    }

    #[test]
    fn injection_probes_path_response() {
        // Inject at the input of a 2-tap FIR: the output shows its taps.
        let fir = Fir::new(vec![0.5, -0.25]);
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Fir(fir), &[x]).unwrap();
        g.mark_output(f);
        let mut sim = SfgSimulator::reference(&g).unwrap();
        sim.inject(x, 1.0);
        assert_eq!(sim.step(&[0.0])[0], 0.5);
        assert_eq!(sim.step(&[0.0])[0], -0.25);
        assert_eq!(sim.step(&[0.0])[0], 0.0);
    }

    #[test]
    fn injection_at_output_node_is_identity() {
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Gain(2.0), &[x]).unwrap();
        g.mark_output(f);
        let mut sim = SfgSimulator::reference(&g).unwrap();
        sim.inject(f, 1.0);
        assert_eq!(sim.step(&[0.0])[0], 1.0);
        assert_eq!(sim.step(&[0.0])[0], 0.0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let iir = Iir::new(vec![1.0], vec![1.0, -0.99]).unwrap();
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Iir(iir), &[x]).unwrap();
        g.mark_output(f);
        let mut sim = SfgSimulator::reference(&g).unwrap();
        let first = sim.run(&[vec![1.0, 0.5, 0.25]]);
        sim.reset();
        let second = sim.run(&[vec![1.0, 0.5, 0.25]]);
        assert_eq!(first, second);
    }

    #[test]
    fn down_up_pair_masks_odd_samples() {
        // x -> v2 -> ^2 keeps even-index samples and stuffs zeros between.
        let mut g = Sfg::new();
        let x = g.add_input();
        let down = g.add_block(Block::Downsample(2), &[x]).unwrap();
        let up = g.add_block(Block::Upsample(2), &[down]).unwrap();
        g.mark_output(up);
        let mut sim = SfgSimulator::reference(&g).unwrap();
        assert_eq!(sim.period_of(down), 2);
        assert_eq!(sim.period_of(up), 1);
        let input: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let got = sim.run(&[input]);
        assert_eq!(got, vec![1.0, 0.0, 3.0, 0.0, 5.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn filter_at_half_rate_sees_the_decimated_stream() {
        // x -> v2 -> FIR(1, 1): at the half rate the filter sums the two
        // most recent *subband* samples, i.e. x[2k] + x[2k-2].
        let mut g = Sfg::new();
        let x = g.add_input();
        let down = g.add_block(Block::Downsample(2), &[x]).unwrap();
        let f = g.add_block(Block::Fir(Fir::new(vec![1.0, 1.0])), &[down]).unwrap();
        let up = g.add_block(Block::Upsample(2), &[f]).unwrap();
        g.mark_output(up);
        let mut sim = SfgSimulator::reference(&g).unwrap();
        let input: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let got = sim.run(&[input]);
        assert_eq!(got, vec![1.0, 0.0, 4.0, 0.0, 8.0, 0.0, 12.0, 0.0]);
    }

    #[test]
    fn delay_at_half_rate_counts_local_samples() {
        // A Delay(1) in the half-rate region delays by one subband sample
        // (two input ticks once re-expanded).
        let mut g = Sfg::new();
        let x = g.add_input();
        let down = g.add_block(Block::Downsample(2), &[x]).unwrap();
        let d = g.add_block(Block::Delay(1), &[down]).unwrap();
        let up = g.add_block(Block::Upsample(2), &[d]).unwrap();
        g.mark_output(up);
        let mut sim = SfgSimulator::reference(&g).unwrap();
        let input: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let got = sim.run(&[input]);
        assert_eq!(got, vec![0.0, 0.0, 1.0, 0.0, 3.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn rates_faster_than_the_input_are_rejected() {
        let mut g = Sfg::new();
        let x = g.add_input();
        let up = g.add_block(Block::Upsample(2), &[x]).unwrap();
        g.mark_output(up);
        assert!(matches!(SfgSimulator::reference(&g), Err(SfgError::Multirate { .. })));
    }

    #[test]
    fn multirate_reset_restores_phase() {
        let mut g = Sfg::new();
        let x = g.add_input();
        let down = g.add_block(Block::Downsample(2), &[x]).unwrap();
        let up = g.add_block(Block::Upsample(2), &[down]).unwrap();
        g.mark_output(up);
        let mut sim = SfgSimulator::reference(&g).unwrap();
        let input: Vec<f64> = vec![5.0, 6.0, 7.0];
        let first = sim.run(std::slice::from_ref(&input));
        sim.reset();
        let second = sim.run(std::slice::from_ref(&input));
        assert_eq!(first, second);
    }

    #[test]
    fn multi_input_graph() {
        let mut g = Sfg::new();
        let x = g.add_input();
        let y = g.add_input();
        let add = g.add_block(Block::Add, &[x, y]).unwrap();
        g.mark_output(add);
        let mut sim = SfgSimulator::reference(&g).unwrap();
        assert_eq!(sim.step(&[2.0, 3.0])[0], 5.0);
    }

    #[test]
    fn energy_of_probed_impulse_matches_lti_energy() {
        // Path impulse response energy via probing equals Fir::energy().
        let fir = Fir::new(vec![0.4, 0.3, -0.2, 0.1]);
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Fir(fir.clone()), &[x]).unwrap();
        g.mark_output(f);
        let mut sim = SfgSimulator::reference(&g).unwrap();
        sim.inject(x, 1.0);
        let mut energy = 0.0;
        for _ in 0..16 {
            let v = sim.step(&[0.0])[0];
            energy += v * v;
        }
        assert!((energy - fir.energy()).abs() < 1e-12);
    }
}
