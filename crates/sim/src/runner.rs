//! Monte-Carlo error measurement: reference vs quantized simulation.

use psdacc_dsp::SignalGenerator;
use psdacc_fixed::Quantizer;
use psdacc_sfg::{Sfg, SfgError};

use crate::engine::SfgSimulator;
use crate::measure::ErrorMeasurement;

/// Configuration for a simulation-based error measurement.
#[derive(Debug, Clone)]
pub struct SimulationPlan {
    /// Number of input samples to simulate.
    pub samples: usize,
    /// PSD resolution for the measured error spectrum.
    pub nfft: usize,
    /// RNG seed for the input signal.
    pub seed: u64,
    /// Peak-ish amplitude of the uniform white input.
    pub amplitude: f64,
    /// Samples to discard while filter transients settle.
    pub warmup: usize,
}

impl Default for SimulationPlan {
    fn default() -> Self {
        SimulationPlan { samples: 100_000, nfft: 1024, seed: 0xC0FFEE, amplitude: 1.0, warmup: 256 }
    }
}

/// Runs the paper's simulation reference on a single-rate SFG: the same
/// white input drives a full-precision and a quantized instance of the
/// graph; the output difference is the fixed-point error.
///
/// `quantizers[node]` selects which node outputs are quantized (typically
/// the input port and every multiplicative block).
///
/// # Errors
///
/// Propagates [`SfgError`] from simulator construction (unrealizable graph).
pub fn measure_quantization_error(
    sfg: &Sfg,
    quantizers: &[Option<Quantizer>],
    plan: &SimulationPlan,
) -> Result<ErrorMeasurement, SfgError> {
    let mut reference = SfgSimulator::reference(sfg)?;
    let mut quantized = SfgSimulator::new(sfg, quantizers.to_vec())?;
    check_output_rate(sfg, &reference)?;
    let mut gen = SignalGenerator::new(plan.seed);
    let ports = sfg.inputs().len();
    let mut err = Vec::with_capacity(plan.samples);
    let mut buf = vec![0.0; ports];
    for t in 0..plan.samples + plan.warmup {
        for b in buf.iter_mut() {
            *b = gen.uniform_white(1, plan.amplitude)[0];
        }
        let r = reference.step(&buf)[0];
        let q = quantized.step(&buf)[0];
        if t >= plan.warmup {
            err.push(q - r);
        }
    }
    Ok(ErrorMeasurement::from_error_signal(&err, plan.nfft))
}

/// Like [`measure_quantization_error`] but with a caller-supplied input
/// signal per port (`signals[port][t]`), e.g. for image-driven or
/// deterministic workloads.
///
/// # Errors
///
/// Propagates [`SfgError`] from simulator construction.
///
/// # Panics
///
/// Panics if channel lengths differ.
pub fn measure_quantization_error_with_input(
    sfg: &Sfg,
    quantizers: &[Option<Quantizer>],
    signals: &[Vec<f64>],
    nfft: usize,
) -> Result<ErrorMeasurement, SfgError> {
    let mut reference = SfgSimulator::reference(sfg)?;
    let mut quantized = SfgSimulator::new(sfg, quantizers.to_vec())?;
    check_output_rate(sfg, &reference)?;
    let r = reference.run(signals);
    let q = quantized.run(signals);
    let err: Vec<f64> = q.iter().zip(&r).map(|(a, b)| a - b).collect();
    Ok(ErrorMeasurement::from_error_signal(&err, nfft))
}

/// An error measurement samples the output once per input tick, so outputs
/// running slower than the input would contribute held (stale) samples and
/// bias the statistics.
fn check_output_rate(sfg: &Sfg, sim: &SfgSimulator) -> Result<(), SfgError> {
    for &out in sfg.outputs() {
        if sim.period_of(out) != 1 {
            return Err(SfgError::Multirate {
                detail: format!(
                    "output {out:?} fires every {} ticks; error measurement needs an \
                     input-rate output",
                    sim.period_of(out)
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdacc_fixed::{NoiseMoments, RoundingMode};
    use psdacc_sfg::Block;

    /// Single quantizer on a wire: the measured error must match the PQN
    /// continuous model (the end-to-end sanity check of the whole stack).
    #[test]
    fn single_quantizer_matches_pqn_model() {
        let mut g = Sfg::new();
        let x = g.add_input();
        let w = g.add_block(Block::Gain(1.0), &[x]).unwrap();
        g.mark_output(w);
        for &mode in &[RoundingMode::Truncate, RoundingMode::RoundNearest] {
            let d = 8;
            let mut quant = vec![None; g.len()];
            quant[w.0] = Some(Quantizer::new(d, mode));
            let plan = SimulationPlan { samples: 200_000, nfft: 64, ..Default::default() };
            let m = measure_quantization_error(&g, &quant, &plan).unwrap();
            let model = NoiseMoments::continuous(mode, d);
            assert!(
                (m.mean - model.mean).abs() < 0.03 * 2f64.powi(-d),
                "{mode:?} mean {} vs {}",
                m.mean,
                model.mean
            );
            assert!(
                (m.variance - model.variance).abs() < 0.05 * model.variance,
                "{mode:?} var {} vs {}",
                m.variance,
                model.variance
            );
        }
    }

    /// Quantization noise through a gain: power scales by g^2.
    #[test]
    fn noise_through_gain_scales() {
        let mut g = Sfg::new();
        let x = g.add_input();
        let q_node = g.add_block(Block::Gain(1.0), &[x]).unwrap();
        let amp = g.add_block(Block::Gain(3.0), &[q_node]).unwrap();
        g.mark_output(amp);
        let d = 10;
        let mut quant = vec![None; g.len()];
        quant[q_node.0] = Some(Quantizer::new(d, RoundingMode::RoundNearest));
        let plan = SimulationPlan { samples: 100_000, nfft: 64, ..Default::default() };
        let m = measure_quantization_error(&g, &quant, &plan).unwrap();
        let model = NoiseMoments::continuous(RoundingMode::RoundNearest, d);
        assert!((m.power - 9.0 * model.power()).abs() < 0.1 * 9.0 * model.power());
    }

    #[test]
    fn supplied_input_variant() {
        let mut g = Sfg::new();
        let x = g.add_input();
        let w = g.add_block(Block::Gain(1.0), &[x]).unwrap();
        g.mark_output(w);
        let mut quant = vec![None; g.len()];
        quant[w.0] = Some(Quantizer::new(4, RoundingMode::Truncate));
        let sig: Vec<f64> = (0..10_000).map(|i| ((i * 31 % 101) as f64 / 101.0) - 0.5).collect();
        let m = measure_quantization_error_with_input(&g, &quant, &[sig], 32).unwrap();
        assert!(m.power > 0.0);
        assert_eq!(m.samples, 10_000);
    }

    #[test]
    fn no_quantizers_zero_error() {
        let mut g = Sfg::new();
        let x = g.add_input();
        let w = g.add_block(Block::Gain(2.0), &[x]).unwrap();
        g.mark_output(w);
        let plan = SimulationPlan { samples: 1000, nfft: 16, ..Default::default() };
        let m = measure_quantization_error(&g, &vec![None; g.len()], &plan).unwrap();
        assert_eq!(m.power, 0.0);
    }
}
