//! Property-based tests of the FFT substrate.

use proptest::prelude::*;
use psdacc_fft::{
    dft, fft, fft2d, fft_pow2, ifft2d, is_conjugate_symmetric, real_fft, BluesteinFft, Complex,
    Direction,
};

fn complex_vec(range: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), range)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Linearity: F(a x + b y) == a F(x) + b F(y).
    #[test]
    fn linearity(
        x in complex_vec(8..33),
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        let n = x.len();
        let y: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, -(i as f64) * 0.5)).collect();
        let combo: Vec<Complex> = x.iter().zip(&y).map(|(u, v)| *u * a + *v * b).collect();
        let lhs = fft(&combo);
        let fx = fft(&x);
        let fy = fft(&y);
        let scale: f64 = combo.iter().map(|v| v.norm()).sum::<f64>().max(1.0);
        for k in 0..n {
            prop_assert!((lhs[k] - (fx[k] * a + fy[k] * b)).norm() < 1e-8 * scale);
        }
    }

    /// Circular shift multiplies bin k by a pure phase.
    #[test]
    fn shift_theorem(x in complex_vec(16..17), s in 0usize..16) {
        let n = x.len();
        let mut shifted = x.clone();
        shifted.rotate_right(s % n);
        let fx = fft(&x);
        let fs = fft(&shifted);
        let scale: f64 = x.iter().map(|v| v.norm()).sum::<f64>().max(1.0);
        for k in 0..n {
            let phase = Complex::cis(-std::f64::consts::TAU * (k * (s % n)) as f64 / n as f64);
            prop_assert!((fs[k] - fx[k] * phase).norm() < 1e-8 * scale);
        }
    }

    /// Real input gives conjugate-symmetric spectra, always.
    #[test]
    fn real_input_symmetry(x in prop::collection::vec(-100.0f64..100.0, 2..64)) {
        let spec = real_fft(&x);
        let scale: f64 = x.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        prop_assert!(is_conjugate_symmetric(&spec, 1e-8 * scale));
    }

    /// Bluestein agrees with radix-2 on power-of-two sizes.
    #[test]
    fn bluestein_agrees_with_radix2(x in complex_vec(32..33)) {
        let b = BluesteinFft::new(x.len(), Direction::Forward).transform(&x);
        let r = fft_pow2(&x);
        let scale: f64 = x.iter().map(|v| v.norm()).sum::<f64>().max(1.0);
        for (u, v) in b.iter().zip(&r) {
            prop_assert!((*u - *v).norm() < 1e-8 * scale);
        }
    }

    /// Bluestein agrees with the naive DFT on arbitrary sizes.
    #[test]
    fn bluestein_agrees_with_dft(x in complex_vec(3..40)) {
        let b = BluesteinFft::new(x.len(), Direction::Forward).transform(&x);
        let d = dft(&x);
        let scale: f64 = x.iter().map(|v| v.norm()).sum::<f64>().max(1.0);
        for (u, v) in b.iter().zip(&d) {
            prop_assert!((*u - *v).norm() < 1e-7 * scale);
        }
    }

    /// 2-D transform is separable and invertible.
    #[test]
    fn fft2d_roundtrip(data in complex_vec(16..17), rows in 1usize..4) {
        let rows = [1usize, 2, 4][rows % 3];
        let cols = 16 / rows;
        let spec = fft2d(&data, rows, cols);
        let back = ifft2d(&spec, rows, cols);
        let scale: f64 = data.iter().map(|v| v.norm()).sum::<f64>().max(1.0);
        for (a, b) in data.iter().zip(&back) {
            prop_assert!((*a - *b).norm() < 1e-9 * scale);
        }
    }

    /// 2-D Parseval.
    #[test]
    fn fft2d_parseval(data in complex_vec(64..65)) {
        let (rows, cols) = (8usize, 8usize);
        let spec = fft2d(&data, rows, cols);
        let time: f64 = data.iter().map(|v| v.norm_sqr()).sum();
        let freq: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / 64.0;
        prop_assert!((time - freq).abs() < 1e-7 * time.max(1.0));
    }
}
