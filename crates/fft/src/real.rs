//! Transforms of real-valued signals.
//!
//! Real input produces a conjugate-symmetric spectrum, so only `N/2 + 1` bins
//! are independent. These helpers exist because nearly every signal in the
//! accuracy-evaluation pipeline (filter outputs, quantization errors, images)
//! is real; they also document the bin layout used throughout the workspace:
//! bin `k` corresponds to normalized frequency `F = k / N` over `[0, 1)`.

use crate::complex::Complex;
use crate::planner::FftPlanner;

/// Forward FFT of a real signal, returning the full `N`-bin complex spectrum.
///
/// # Examples
///
/// ```
/// use psdacc_fft::real_fft;
/// let spec = real_fft(&[1.0, 0.0, 0.0, 0.0]);
/// assert!(spec.iter().all(|b| (b.norm() - 1.0).abs() < 1e-12));
/// ```
pub fn real_fft(input: &[f64]) -> Vec<Complex> {
    if input.is_empty() {
        return Vec::new();
    }
    let buf: Vec<Complex> = input.iter().map(|&v| Complex::from_re(v)).collect();
    FftPlanner::new().fft(&buf)
}

/// Forward FFT of a real signal, keeping only the `N/2 + 1` non-redundant bins
/// (`0..=N/2` for even `N`, `0..=(N-1)/2` for odd `N`).
pub fn real_fft_half(input: &[f64]) -> Vec<Complex> {
    let full = real_fft(input);
    let keep = full.len() / 2 + 1;
    full.into_iter().take(keep).collect()
}

/// Inverse FFT returning the real part (the imaginary residue of a
/// conjugate-symmetric spectrum is rounding noise).
pub fn real_ifft(spectrum: &[Complex]) -> Vec<f64> {
    FftPlanner::new().ifft(spectrum).iter().map(|v| v.re).collect()
}

/// Expands a half spectrum (as produced by [`real_fft_half`]) back to the full
/// conjugate-symmetric `n`-bin spectrum.
///
/// # Panics
///
/// Panics if `half.len() != n / 2 + 1`.
pub fn expand_half_spectrum(half: &[Complex], n: usize) -> Vec<Complex> {
    assert_eq!(half.len(), n / 2 + 1, "half spectrum must have n/2+1 bins");
    let mut full = Vec::with_capacity(n);
    full.extend_from_slice(half);
    for k in (n / 2 + 1)..n {
        full.push(half[n - k].conj());
    }
    // For even n, bin n/2 must be real; enforce it so callers can rely on
    // perfect symmetry after an expand.
    if n.is_multiple_of(2) && n > 0 {
        full[n / 2] = Complex::from_re(full[n / 2].re);
    }
    full
}

/// Checks conjugate symmetry `X[k] == conj(X[N-k])` within `tol`.
pub fn is_conjugate_symmetric(spectrum: &[Complex], tol: f64) -> bool {
    let n = spectrum.len();
    if n == 0 {
        return true;
    }
    if spectrum[0].im.abs() > tol {
        return false;
    }
    for k in 1..n {
        if (spectrum[k] - spectrum[n - k].conj()).norm() > tol {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_spectrum_is_conjugate_symmetric() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.37).sin() + 0.2).collect();
        let spec = real_fft(&x);
        assert!(is_conjugate_symmetric(&spec, 1e-10));
    }

    #[test]
    fn half_spectrum_roundtrip() {
        for &n in &[8usize, 16, 10, 31] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 1.1).cos() * 0.5 + 0.1).collect();
            let half = real_fft_half(&x);
            let full = expand_half_spectrum(&half, n);
            let direct = real_fft(&x);
            for (a, b) in full.iter().zip(&direct) {
                assert!((*a - *b).norm() < 1e-9, "n={n}");
            }
            let back = real_ifft(&full);
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn detects_asymmetry() {
        let mut spec = real_fft(&[1.0, 2.0, 3.0, 4.0]);
        spec[1] += Complex::new(0.0, 1.0);
        assert!(!is_conjugate_symmetric(&spec, 1e-6));
    }

    #[test]
    fn dc_only_signal() {
        let spec = real_fft(&[5.0; 8]);
        assert!((spec[0].re - 40.0).abs() < 1e-12);
        for b in &spec[1..] {
            assert!(b.norm() < 1e-10);
        }
    }

    #[test]
    fn empty_is_fine() {
        assert!(real_fft(&[]).is_empty());
        assert!(is_conjugate_symmetric(&[], 0.0));
    }
}
