//! # psdacc-fft
//!
//! From-scratch fast Fourier transform substrate for the `psdacc` workspace —
//! the reproduction of *"Leveraging Power Spectral Density for Scalable
//! System-Level Accuracy Evaluation"* (Barrois, Parashar, Sentieys, DATE
//! 2016).
//!
//! Everything the paper's method needs from a transform library is here:
//!
//! * [`Complex`] — a dependency-free complex `f64` type,
//! * [`dft()`](dft::dft) / [`idft()`](dft::idft) — naive O(N^2) reference transforms,
//! * [`Radix2Fft`] — iterative power-of-two FFT,
//! * [`BluesteinFft`] — arbitrary-size FFT via the chirp-z identity,
//! * [`FftPlanner`] — plan caching across repeated transforms,
//! * [`real_fft`] and friends — real-signal helpers with the workspace-wide
//!   bin convention `F_k = k / N` over `[0, 1)`.
//!
//! # Example
//!
//! ```
//! use psdacc_fft::{FftPlanner, Complex};
//!
//! let mut planner = FftPlanner::new();
//! let tone: Vec<Complex> = (0..64)
//!     .map(|n| Complex::cis(std::f64::consts::TAU * 4.0 * n as f64 / 64.0))
//!     .collect();
//! let spectrum = planner.fft(&tone);
//! // All the energy lands in bin 4.
//! assert!((spectrum[4].norm() - 64.0).abs() < 1e-9);
//! ```

pub mod bluestein;
pub mod complex;
pub mod dft;
pub mod fft2d;
pub mod planner;
pub mod radix2;
pub mod real;

pub use bluestein::BluesteinFft;
pub use complex::Complex;
pub use dft::{dft, idft, idft_unnormalized};
pub use fft2d::{fft2d, fft2d_real, ifft2d, periodogram2d};
pub use planner::{fft, ifft, FftPlanner};
pub use radix2::{fft_pow2, ifft_pow2, Direction, Radix2Fft};
pub use real::{expand_half_spectrum, is_conjugate_symmetric, real_fft, real_fft_half, real_ifft};
