//! Bluestein's chirp-z algorithm: FFT of *arbitrary* length in O(N log N).
//!
//! A length-N DFT is rewritten as a circular convolution of chirp-modulated
//! sequences, which is evaluated with a power-of-two radix-2 FFT of size
//! `M >= 2N - 1`. This lets the library take PSD grids or filter lengths that
//! are not powers of two without falling back to the O(N^2) DFT.

use crate::complex::Complex;
use crate::radix2::{Direction, Radix2Fft};

/// A planned arbitrary-size FFT using Bluestein's algorithm.
#[derive(Debug, Clone)]
pub struct BluesteinFft {
    n: usize,
    direction: Direction,
    /// Chirp `e^(sign * pi i k^2 / N)` for `k in 0..N`.
    chirp: Vec<Complex>,
    /// Forward FFT of the zero-padded conjugate chirp (the convolution kernel).
    kernel_spectrum: Vec<Complex>,
    inner_forward: Radix2Fft,
    inner_inverse: Radix2Fft,
    m: usize,
}

impl BluesteinFft {
    /// Plans a transform of size `n` (any positive integer).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, direction: Direction) -> Self {
        assert!(n > 0, "FFT size must be positive");
        let sign = match direction {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        };
        // chirp[k] = e^(sign * i pi k^2 / n); compute k^2 mod 2n to keep the
        // trig argument bounded for large n.
        let chirp: Vec<Complex> = (0..n)
            .map(|k| {
                let k2 = (k as u128 * k as u128) % (2 * n as u128);
                Complex::cis(sign * std::f64::consts::PI * k2 as f64 / n as f64)
            })
            .collect();
        let m = (2 * n - 1).next_power_of_two();
        let inner_forward = Radix2Fft::new(m, Direction::Forward);
        let inner_inverse = Radix2Fft::new(m, Direction::Inverse);
        // Kernel b[k] = conj(chirp[k]) arranged circularly so that the linear
        // convolution indices wrap: b[0] = conj(c0), b[k] = b[m-k] = conj(ck).
        let mut kernel = vec![Complex::ZERO; m];
        kernel[0] = chirp[0].conj();
        for k in 1..n {
            kernel[k] = chirp[k].conj();
            kernel[m - k] = chirp[k].conj();
        }
        inner_forward.process(&mut kernel);
        BluesteinFft {
            n,
            direction,
            chirp,
            kernel_spectrum: kernel,
            inner_forward,
            inner_inverse,
            m,
        }
    }

    /// The transform size this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the planned size is zero (cannot happen).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The direction this plan computes.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Transforms `input` (length must equal [`BluesteinFft::len`]).
    ///
    /// Like the radix-2 plan, the inverse direction is unnormalized.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the planned size.
    pub fn transform(&self, input: &[Complex]) -> Vec<Complex> {
        assert_eq!(
            input.len(),
            self.n,
            "buffer length {} != planned FFT size {}",
            input.len(),
            self.n
        );
        let n = self.n;
        // a[k] = x[k] * chirp[k], zero padded to m.
        let mut a = vec![Complex::ZERO; self.m];
        for k in 0..n {
            a[k] = input[k] * self.chirp[k];
        }
        self.inner_forward.process(&mut a);
        for (av, kv) in a.iter_mut().zip(&self.kernel_spectrum) {
            *av *= *kv;
        }
        self.inner_inverse.process(&mut a);
        let scale = 1.0 / self.m as f64;
        (0..n).map(|k| a[k] * self.chirp[k] * scale).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft, idft_unnormalized};

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n).map(|_| Complex::new(next(), next())).collect()
    }

    #[test]
    fn matches_dft_for_awkward_sizes() {
        for &n in &[1usize, 2, 3, 5, 7, 12, 17, 31, 100, 127] {
            let x = rand_signal(n, n as u64 + 1);
            let plan = BluesteinFft::new(n, Direction::Forward);
            let fast = plan.transform(&x);
            let slow = dft(&x);
            for (k, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!((*a - *b).norm() < 1e-8 * (n as f64).max(1.0), "n={n} bin {k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn inverse_matches_naive() {
        for &n in &[3usize, 9, 21] {
            let x = rand_signal(n, 42);
            let plan = BluesteinFft::new(n, Direction::Inverse);
            let fast = plan.transform(&x);
            let slow = idft_unnormalized(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).norm() < 1e-8 * n as f64);
            }
        }
    }

    #[test]
    fn forward_then_inverse_roundtrip() {
        let n = 37;
        let x = rand_signal(n, 5);
        let f = BluesteinFft::new(n, Direction::Forward);
        let i = BluesteinFft::new(n, Direction::Inverse);
        let spec = f.transform(&x);
        let back: Vec<Complex> = i.transform(&spec).iter().map(|v| *v / n as f64).collect();
        for (a, b) in x.iter().zip(&back) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn works_on_power_of_two_sizes_too() {
        let n = 16;
        let x = rand_signal(n, 8);
        let plan = BluesteinFft::new(n, Direction::Forward);
        let fast = plan.transform(&x);
        let slow = dft(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_size() {
        let _ = BluesteinFft::new(0, Direction::Forward);
    }
}
