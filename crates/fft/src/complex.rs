//! A minimal, dependency-free complex number type.
//!
//! The workspace deliberately avoids external numeric crates (see
//! `DESIGN.md` §6), so the small subset of complex arithmetic required by the
//! FFT, filter-design and PSD machinery lives here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use psdacc_fft::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// assert_eq!(z * Complex::I, Complex::new(-4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^(i theta)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use psdacc_fft::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - Complex::new(0.0, 2.0)).norm() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^(i theta)`: a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `re^2 + im^2` (cheaper than [`Complex::norm`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude (Euclidean norm).
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// Returns non-finite components when `self` is zero, mirroring `1.0/0.0`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Complex exponential `e^self`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let r = self.norm();
        let theta = self.arg();
        Complex::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Raises to a real power using the principal branch.
    #[inline]
    pub fn powf(self, k: f64) -> Self {
        if self == Complex::ZERO {
            return Complex::ZERO;
        }
        Complex::from_polar(self.norm().powf(k), self.arg() * k)
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Fused multiply-add: `self * b + c`, as a single expression.
    #[inline]
    pub fn mul_add(self, b: Complex, c: Complex) -> Self {
        self * b + c
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w^-1 is the definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: f64) -> Complex {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: f64) -> Complex {
        Complex::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Add<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        rhs + self
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Self {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex> for Complex {
    fn sum<I: Iterator<Item = &'a Complex>>(iter: I) -> Self {
        iter.fold(Complex::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn constructors() {
        assert_eq!(Complex::new(1.0, 2.0).re, 1.0);
        assert_eq!(Complex::from_re(3.0), Complex::new(3.0, 0.0));
        assert_eq!(Complex::from(4.0), Complex::new(4.0, 0.0));
        assert_eq!(Complex::default(), Complex::ZERO);
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(2.5, -1.5);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert!(close(z * z.inv(), Complex::ONE));
        assert!(close(z / z, Complex::ONE));
        assert_eq!(-(-z), z);
        assert_eq!(z - z, Complex::ZERO);
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -4.0);
        // (1+2i)(3-4i) = 3 - 4i + 6i + 8 = 11 + 2i
        assert_eq!(a * b, Complex::new(11.0, 2.0));
    }

    #[test]
    fn division() {
        let a = Complex::new(11.0, 2.0);
        let b = Complex::new(3.0, -4.0);
        assert!(close(a / b, Complex::new(1.0, 2.0)));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert!(close(z * z.conj(), Complex::from_re(25.0)));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::new(-1.25, 0.75);
        let back = Complex::from_polar(z.norm(), z.arg());
        assert!(close(z, back));
    }

    #[test]
    fn cis_is_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            assert!((Complex::cis(theta).norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exp_of_imaginary_pi_is_minus_one() {
        let z = Complex::new(0.0, std::f64::consts::PI).exp();
        assert!(close(z, Complex::from_re(-1.0)));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (-4.0, 0.0), (1.0, 1.0), (-2.0, -3.0)] {
            let z = Complex::new(re, im);
            let r = z.sqrt();
            assert!(close(r * r, z), "sqrt({z})^2 = {} != {z}", r * r);
        }
    }

    #[test]
    fn powf_matches_repeated_multiplication() {
        let z = Complex::new(1.2, -0.7);
        assert!(close(z.powf(3.0), z * z * z));
        assert_eq!(Complex::ZERO.powf(2.0), Complex::ZERO);
    }

    #[test]
    fn scalar_ops() {
        let z = Complex::new(1.0, -2.0);
        assert_eq!(z * 2.0, Complex::new(2.0, -4.0));
        assert_eq!(2.0 * z, Complex::new(2.0, -4.0));
        assert_eq!(z / 2.0, Complex::new(0.5, -1.0));
        assert_eq!(z + 1.0, Complex::new(2.0, -2.0));
        assert_eq!(z - 1.0, Complex::new(0.0, -2.0));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::ONE;
        assert_eq!(z, Complex::new(2.0, 1.0));
        z -= Complex::I;
        assert_eq!(z, Complex::new(2.0, 0.0));
        z *= Complex::I;
        assert_eq!(z, Complex::new(0.0, 2.0));
        z /= Complex::new(0.0, 2.0);
        assert!(close(z, Complex::ONE));
        z *= 3.0;
        assert!(close(z, Complex::from_re(3.0)));
    }

    #[test]
    fn sum_iterator() {
        let v = vec![Complex::ONE, Complex::I, Complex::new(1.0, 1.0)];
        let s: Complex = v.iter().sum();
        assert_eq!(s, Complex::new(2.0, 2.0));
        let s2: Complex = v.into_iter().sum();
        assert_eq!(s2, Complex::new(2.0, 2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
