//! Two-dimensional FFT (separable: rows then columns).
//!
//! Needed for the 2-D error-spectrum experiments (the DWT benchmark's
//! Fig. 7) and the synthetic-image generator's spectral shaping.

use crate::complex::Complex;
use crate::planner::FftPlanner;

/// Forward 2-D FFT of a row-major `rows x cols` complex field.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols` or either dimension is zero.
pub fn fft2d(data: &[Complex], rows: usize, cols: usize) -> Vec<Complex> {
    transform2d(data, rows, cols, false)
}

/// Normalized inverse 2-D FFT (`ifft2d(fft2d(x)) == x`).
///
/// # Panics
///
/// Panics if `data.len() != rows * cols` or either dimension is zero.
pub fn ifft2d(data: &[Complex], rows: usize, cols: usize) -> Vec<Complex> {
    transform2d(data, rows, cols, true)
}

/// Forward 2-D FFT of a real field.
pub fn fft2d_real(data: &[f64], rows: usize, cols: usize) -> Vec<Complex> {
    let buf: Vec<Complex> = data.iter().map(|&v| Complex::from_re(v)).collect();
    fft2d(&buf, rows, cols)
}

fn transform2d(data: &[Complex], rows: usize, cols: usize, inverse: bool) -> Vec<Complex> {
    assert!(rows > 0 && cols > 0, "dimensions must be positive");
    assert_eq!(data.len(), rows * cols, "data length must equal rows * cols");
    let mut planner = FftPlanner::new();
    let mut out = vec![Complex::ZERO; rows * cols];
    // Rows.
    let mut row_buf = vec![Complex::ZERO; cols];
    for r in 0..rows {
        row_buf.copy_from_slice(&data[r * cols..(r + 1) * cols]);
        let spec = if inverse { planner.ifft(&row_buf) } else { planner.fft(&row_buf) };
        out[r * cols..(r + 1) * cols].copy_from_slice(&spec);
    }
    // Columns.
    let mut col_buf = vec![Complex::ZERO; rows];
    for c in 0..cols {
        for r in 0..rows {
            col_buf[r] = out[r * cols + c];
        }
        let spec = if inverse { planner.ifft(&col_buf) } else { planner.fft(&col_buf) };
        for r in 0..rows {
            out[r * cols + c] = spec[r];
        }
    }
    out
}

/// 2-D periodogram with bin-mass normalization: `S[ky][kx] =
/// |X[ky][kx]|^2 / (rows cols)^2`, so `sum(S) == mean(x^2)`.
pub fn periodogram2d(data: &[f64], rows: usize, cols: usize) -> Vec<f64> {
    let n = (rows * cols) as f64;
    fft2d_real(data, rows, cols).iter().map(|v| v.norm_sqr() / (n * n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let rows = 8;
        let cols = 4;
        let data: Vec<Complex> = (0..rows * cols)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let back = ifft2d(&fft2d(&data, rows, cols), rows, cols);
        for (a, b) in data.iter().zip(&back) {
            assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    fn separable_tone_hits_single_bin() {
        let n = 16;
        let (kx, ky) = (3, 5);
        let data: Vec<f64> = (0..n * n)
            .map(|i| {
                let (r, c) = (i / n, i % n);
                (std::f64::consts::TAU * (kx * c + ky * r) as f64 / n as f64).cos()
            })
            .collect();
        let spec = fft2d_real(&data, n, n);
        // cos splits between (ky,kx) and (n-ky, n-kx).
        let mag = spec[ky * n + kx].norm();
        assert!((mag - (n * n) as f64 / 2.0).abs() < 1e-6);
        let mag2 = spec[(n - ky) * n + (n - kx)].norm();
        assert!((mag2 - (n * n) as f64 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn parseval_2d() {
        let rows = 8;
        let cols = 8;
        let data: Vec<f64> = (0..64).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let power: f64 = data.iter().map(|v| v * v).sum::<f64>() / 64.0;
        let s = periodogram2d(&data, rows, cols);
        let total: f64 = s.iter().sum();
        assert!((total - power).abs() < 1e-10);
    }

    #[test]
    fn dc_bin() {
        let s = periodogram2d(&[1.5; 16], 4, 4);
        assert!((s[0] - 2.25).abs() < 1e-12);
        assert!(s[1..].iter().all(|&v| v < 1e-15));
    }

    #[test]
    #[should_panic(expected = "rows * cols")]
    fn dimension_validation() {
        let _ = fft2d(&[Complex::ZERO; 7], 2, 4);
    }
}
