//! Iterative radix-2 decimation-in-time FFT for power-of-two lengths.
//!
//! The implementation precomputes a twiddle-factor table once per size (see
//! [`crate::planner::FftPlanner`] for caching across calls) and performs the
//! classic bit-reversal permutation followed by `log2(N)` butterfly stages,
//! all in place.

use crate::complex::Complex;

/// Direction of a transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `e^(-2 pi i / N)` kernel (time to frequency).
    Forward,
    /// `e^(+2 pi i / N)` kernel, *unnormalized* (frequency to time).
    Inverse,
}

impl Direction {
    fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

/// A planned radix-2 FFT of a fixed power-of-two size.
#[derive(Debug, Clone)]
pub struct Radix2Fft {
    n: usize,
    direction: Direction,
    /// Twiddles `e^(sign * 2 pi i k / N)` for `k` in `0..N/2`.
    twiddles: Vec<Complex>,
    /// Bit-reversal permutation table.
    rev: Vec<u32>,
}

impl Radix2Fft {
    /// Plans a transform of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize, direction: Direction) -> Self {
        assert!(n.is_power_of_two(), "radix-2 FFT size must be a power of two, got {n}");
        let sign = direction.sign();
        let step = sign * std::f64::consts::TAU / n as f64;
        let twiddles = (0..n / 2).map(|k| Complex::cis(step * k as f64)).collect();
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| if bits == 0 { 0 } else { i.reverse_bits() >> (32 - bits) })
            .collect();
        Radix2Fft { n, direction, twiddles, rev }
    }

    /// The transform size this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the planned size is zero (never happens; kept for
    /// API completeness alongside [`Radix2Fft::len`]).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The direction this plan computes.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Transforms `buf` in place.
    ///
    /// The inverse direction is unnormalized: apply a `1/N` scale to invert a
    /// forward transform.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the planned size.
    pub fn process(&self, buf: &mut [Complex]) {
        assert_eq!(buf.len(), self.n, "buffer length {} != planned FFT size {}", buf.len(), self.n);
        let n = self.n;
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        // Butterfly stages: width doubles each stage.
        let mut half = 1usize;
        while half < n {
            let stride = n / (2 * half); // twiddle table stride for this stage
            let mut base = 0;
            while base < n {
                for k in 0..half {
                    let w = self.twiddles[k * stride];
                    let a = buf[base + k];
                    let b = buf[base + k + half] * w;
                    buf[base + k] = a + b;
                    buf[base + k + half] = a - b;
                }
                base += 2 * half;
            }
            half *= 2;
        }
    }

    /// Convenience: transforms a copy of `input` and returns it.
    pub fn transform(&self, input: &[Complex]) -> Vec<Complex> {
        let mut buf = input.to_vec();
        self.process(&mut buf);
        buf
    }
}

/// One-shot forward FFT for power-of-two sizes.
///
/// For repeated transforms of the same size prefer
/// [`crate::planner::FftPlanner`], which caches the twiddle tables.
pub fn fft_pow2(input: &[Complex]) -> Vec<Complex> {
    Radix2Fft::new(input.len(), Direction::Forward).transform(input)
}

/// One-shot normalized inverse FFT for power-of-two sizes.
pub fn ifft_pow2(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut out = Radix2Fft::new(n, Direction::Inverse).transform(input);
    let scale = 1.0 / n as f64;
    for v in &mut out {
        *v *= scale;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex> {
        // Small deterministic LCG; no external RNG needed at this layer.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n).map(|_| Complex::new(next(), next())).collect()
    }

    #[test]
    fn matches_naive_dft_across_sizes() {
        for &n in &[1usize, 2, 4, 8, 16, 64, 256] {
            let x = rand_signal(n, n as u64);
            let fast = fft_pow2(&x);
            let slow = dft(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).norm() < 1e-9 * n as f64, "size {n}");
            }
        }
    }

    #[test]
    fn roundtrip() {
        let x = rand_signal(128, 7);
        let back = ifft_pow2(&fft_pow2(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Radix2Fft::new(12, Direction::Forward);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn rejects_wrong_buffer_length() {
        let plan = Radix2Fft::new(8, Direction::Forward);
        let mut buf = vec![Complex::ZERO; 4];
        plan.process(&mut buf);
    }

    #[test]
    fn parseval_large() {
        let n = 1024;
        let x = rand_signal(n, 99);
        let time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let freq: f64 = fft_pow2(&x).iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time - freq).abs() / time < 1e-12);
    }

    #[test]
    fn shift_theorem() {
        // Circular shift by s multiplies bin k by e^(-2 pi i k s / N).
        let n = 64;
        let s = 5;
        let x = rand_signal(n, 3);
        let mut shifted = x.clone();
        shifted.rotate_right(s);
        let fx = fft_pow2(&x);
        let fs = fft_pow2(&shifted);
        for k in 0..n {
            let phase = Complex::cis(-std::f64::consts::TAU * (k * s) as f64 / n as f64);
            assert!((fs[k] - fx[k] * phase).norm() < 1e-9);
        }
    }

    #[test]
    fn size_one_is_identity() {
        let x = vec![Complex::new(3.0, -2.0)];
        assert_eq!(fft_pow2(&x), x);
        assert_eq!(ifft_pow2(&x), x);
    }
}
