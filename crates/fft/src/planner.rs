//! Plan caching: reuse twiddle tables across transforms of the same size.
//!
//! Planning a transform costs O(N) trigonometric evaluations (plus an O(M)
//! kernel FFT for Bluestein sizes); the accuracy-evaluation pipeline performs
//! thousands of transforms on a handful of sizes, so plans are cached in a
//! per-planner map. `FftPlanner` is cheap to construct and can also be shared
//! behind a `&mut` borrow.

use std::collections::HashMap;

use crate::bluestein::BluesteinFft;
use crate::complex::Complex;
use crate::radix2::{Direction, Radix2Fft};

/// A cached transform plan for one `(size, direction)` pair.
#[derive(Debug, Clone)]
enum Plan {
    Radix2(Radix2Fft),
    Bluestein(Box<BluesteinFft>),
}

impl Plan {
    fn transform(&self, input: &[Complex]) -> Vec<Complex> {
        match self {
            Plan::Radix2(p) => p.transform(input),
            Plan::Bluestein(p) => p.transform(input),
        }
    }
}

/// Creates and caches FFT plans of any size.
///
/// # Examples
///
/// ```
/// use psdacc_fft::{FftPlanner, Complex};
///
/// let mut planner = FftPlanner::new();
/// let x = vec![Complex::ONE; 12]; // not a power of two: Bluestein kicks in
/// let spectrum = planner.fft(&x);
/// let back = planner.ifft(&spectrum);
/// assert!((back[3] - Complex::ONE).norm() < 1e-10);
/// ```
#[derive(Debug, Default)]
pub struct FftPlanner {
    plans: HashMap<(usize, bool), Plan>,
}

impl FftPlanner {
    /// Creates an empty planner.
    pub fn new() -> Self {
        FftPlanner { plans: HashMap::new() }
    }

    fn plan(&mut self, n: usize, direction: Direction) -> &Plan {
        let key = (n, matches!(direction, Direction::Forward));
        self.plans.entry(key).or_insert_with(|| {
            if n.is_power_of_two() {
                Plan::Radix2(Radix2Fft::new(n, direction))
            } else {
                Plan::Bluestein(Box::new(BluesteinFft::new(n, direction)))
            }
        })
    }

    /// Forward FFT of arbitrary size.
    ///
    /// # Panics
    ///
    /// Panics if `input` is empty.
    pub fn fft(&mut self, input: &[Complex]) -> Vec<Complex> {
        assert!(!input.is_empty(), "cannot transform an empty buffer");
        self.plan(input.len(), Direction::Forward).transform(input)
    }

    /// Normalized inverse FFT of arbitrary size (`ifft(fft(x)) == x`).
    ///
    /// # Panics
    ///
    /// Panics if `input` is empty.
    pub fn ifft(&mut self, input: &[Complex]) -> Vec<Complex> {
        assert!(!input.is_empty(), "cannot transform an empty buffer");
        let n = input.len();
        let mut out = self.plan(n, Direction::Inverse).transform(input);
        let scale = 1.0 / n as f64;
        for v in &mut out {
            *v *= scale;
        }
        out
    }

    /// Forward FFT of a real signal (full complex spectrum).
    pub fn fft_real(&mut self, input: &[f64]) -> Vec<Complex> {
        let buf: Vec<Complex> = input.iter().map(|&v| Complex::from_re(v)).collect();
        self.fft(&buf)
    }

    /// Number of distinct plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.len()
    }
}

/// One-shot forward FFT of arbitrary size (convenience wrapper).
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    FftPlanner::new().fft(input)
}

/// One-shot normalized inverse FFT of arbitrary size.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    FftPlanner::new().ifft(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    #[test]
    fn planner_matches_dft_for_mixed_sizes() {
        let mut planner = FftPlanner::new();
        for &n in &[2usize, 3, 8, 12, 16, 30] {
            let x: Vec<Complex> =
                (0..n).map(|i| Complex::new((i as f64).sin(), (i as f64).cos())).collect();
            let fast = planner.fft(&x);
            let slow = dft(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).norm() < 1e-8, "n={n}");
            }
        }
        // 6 sizes x forward = 6 plans (inverse not yet requested).
        assert_eq!(planner.cached_plans(), 6);
    }

    #[test]
    fn plans_are_reused() {
        let mut planner = FftPlanner::new();
        let x = vec![Complex::ONE; 64];
        let _ = planner.fft(&x);
        let _ = planner.fft(&x);
        let _ = planner.ifft(&x);
        assert_eq!(planner.cached_plans(), 2);
    }

    #[test]
    fn roundtrip_non_power_of_two() {
        let mut planner = FftPlanner::new();
        let x: Vec<Complex> = (0..15).map(|i| Complex::new(i as f64, -0.5 * i as f64)).collect();
        let spec = planner.fft(&x);
        let back = planner.ifft(&spec);
        for (a, b) in x.iter().zip(&back) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        FftPlanner::new().fft(&[]);
    }
}
