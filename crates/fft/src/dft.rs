//! Naive O(N^2) discrete Fourier transform.
//!
//! This module is the *reference implementation* against which the fast
//! algorithms ([`crate::radix2`], [`crate::bluestein`]) are validated. It is
//! also used directly for very small transforms where the O(N log N) setup
//! cost is not worth paying.

use crate::complex::Complex;

/// Computes the forward DFT of `input`:
/// `X[k] = sum_n x[n] * e^(-2 pi i k n / N)`.
///
/// # Examples
///
/// ```
/// use psdacc_fft::{dft, Complex};
/// let x = vec![Complex::ONE; 4];
/// let spectrum = dft(&x);
/// assert!((spectrum[0] - Complex::from_re(4.0)).norm() < 1e-12);
/// assert!(spectrum[1].norm() < 1e-12);
/// ```
pub fn dft(input: &[Complex]) -> Vec<Complex> {
    transform(input, -1.0)
}

/// Computes the *unnormalized* inverse DFT of `input`:
/// `x[n] = sum_k X[k] * e^(+2 pi i k n / N)`.
///
/// Divide by `N` to invert [`dft`].
pub fn idft_unnormalized(input: &[Complex]) -> Vec<Complex> {
    transform(input, 1.0)
}

/// Computes the normalized inverse DFT, such that
/// `idft(dft(x)) == x` up to rounding.
pub fn idft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut out = idft_unnormalized(input);
    let scale = 1.0 / n as f64;
    for v in &mut out {
        *v *= scale;
    }
    out
}

fn transform(input: &[Complex], sign: f64) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let step = sign * std::f64::consts::TAU / n as f64;
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (i, &x) in input.iter().enumerate() {
                // (k * i) % n keeps the phase argument small for large N,
                // reducing trigonometric argument-reduction error.
                let phase = step * ((k * i) % n) as f64;
                acc += x * Complex::cis(phase);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        for v in dft(&x) {
            assert!((v - Complex::ONE).norm() < 1e-12);
        }
    }

    #[test]
    fn dft_of_constant_is_dc_spike() {
        let x = vec![Complex::from_re(2.0); 8];
        let spec = dft(&x);
        assert!((spec[0] - Complex::from_re(16.0)).norm() < 1e-12);
        for v in &spec[1..] {
            assert!(v.norm() < 1e-10);
        }
    }

    #[test]
    fn dft_of_single_tone_hits_one_bin() {
        let n = 16;
        let bin = 3;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(std::f64::consts::TAU * bin as f64 * i as f64 / n as f64))
            .collect();
        let spec = dft(&x);
        for (k, v) in spec.iter().enumerate() {
            if k == bin {
                assert!((v.norm() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.norm() < 1e-9, "leakage at bin {k}: {v}");
            }
        }
    }

    #[test]
    fn idft_inverts_dft() {
        let x: Vec<Complex> =
            (0..12).map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos())).collect();
        let back = idft(&dft(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    fn empty_input() {
        assert!(dft(&[]).is_empty());
        assert!(idft(&[]).is_empty());
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex> = (0..9).map(|i| Complex::new(i as f64, -(i as f64))).collect();
        let b: Vec<Complex> = (0..9).map(|i| Complex::new(1.0, i as f64 * 0.5)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let lhs = dft(&sum);
        let fa = dft(&a);
        let fb = dft(&b);
        for k in 0..9 {
            assert!((lhs[k] - (fa[k] + fb[k])).norm() < 1e-10);
        }
    }

    #[test]
    fn parseval() {
        let x: Vec<Complex> =
            (0..17).map(|i| Complex::new((i as f64 * 1.3).sin(), (i as f64 * 0.3).cos())).collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let spec = dft(&x);
        let freq_energy: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }
}
