//! The memory → disk → build cache chain.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use psdacc_core::AccuracyEvaluator;
use psdacc_engine::{
    CacheStats, EngineError, EvaluatorCache, FillSource, PreprocessCache, Scenario,
};

use crate::error::StoreError;
use crate::layout::Store;
use crate::Record;

/// A [`PreprocessCache`] that layers the disk [`Store`] underneath the
/// in-memory [`EvaluatorCache`]: lookups hit memory first, then disk, and
/// only build (and persist) as a last resort. Drop-in for
/// `Engine::with_shared_cache`, so a daemon restart warm-starts from disk
/// with **zero** preprocessing builds.
#[derive(Debug)]
pub struct PersistentCache {
    memory: EvaluatorCache,
    store: Store,
    disk_hits: AtomicUsize,
    disk_writes: AtomicUsize,
}

impl PersistentCache {
    /// Opens (creating if needed) a persistent cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<std::path::PathBuf>) -> Result<Self, StoreError> {
        Self::open_with_limit(dir, None)
    }

    /// Like [`PersistentCache::open`], capping the on-disk record count:
    /// when a write pushes the store past `max_entries`, the
    /// least-recently-used records (by modification time — loads touch it)
    /// are evicted.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open_with_limit(
        dir: impl Into<std::path::PathBuf>,
        max_entries: Option<usize>,
    ) -> Result<Self, StoreError> {
        Ok(PersistentCache {
            memory: EvaluatorCache::new(),
            store: Store::open_with_limit(dir, max_entries)?,
            disk_hits: AtomicUsize::new(0),
            disk_writes: AtomicUsize::new(0),
        })
    }

    /// The underlying disk store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Attempts the disk layer; any failure degrades to a miss. Corrupt or
    /// mismatched records are deleted so the rebuild can replace them.
    fn try_load(&self, scenario: &Scenario, npsd: usize) -> Option<Arc<AccuracyEvaluator>> {
        let key = scenario.key();
        let record = match self.store.load(&key, npsd) {
            Ok(Some(record)) => record,
            Ok(None) => return None,
            Err(e) => {
                eprintln!("psdacc-store: discarding unreadable record for {key}#{npsd}: {e}");
                let _ = self.store.remove(&key, npsd);
                return None;
            }
        };
        // Rebuilding the graph is cheap (filter design), unlike the
        // per-bin solve or multirate kernel propagation the record spares
        // us. `from_cached` verifies the record's flavor matches the
        // graph's rate structure.
        let sfg = scenario.build().ok()?;
        let tau_pp = record.preprocess_seconds;
        match record.into_preprocessed().and_then(|preprocessed| {
            AccuracyEvaluator::from_cached(&sfg, preprocessed, tau_pp)
                .map_err(|e| StoreError::Codec(e.to_string()))
        }) {
            Ok(evaluator) => Some(Arc::new(evaluator)),
            Err(e) => {
                eprintln!("psdacc-store: record for {key}#{npsd} does not fit its graph: {e}");
                let _ = self.store.remove(&key, npsd);
                None
            }
        }
    }
}

impl PreprocessCache for PersistentCache {
    fn get_or_build_traced(
        &self,
        scenario: &Scenario,
        npsd: usize,
    ) -> Result<(Arc<AccuracyEvaluator>, bool), EngineError> {
        self.memory.get_or_fill_traced(scenario, npsd, || {
            let loaded = {
                let _frame = psdacc_obs::profile::frame("cache.disk_load");
                self.try_load(scenario, npsd)
            };
            if let Some(evaluator) = loaded {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((evaluator, FillSource::Loaded));
            }
            let _frame = psdacc_obs::profile::frame("cache.build");
            let sfg = scenario.build()?;
            let evaluator = Arc::new(AccuracyEvaluator::new(&sfg, npsd)?);
            let record = Record::from_preprocessed(
                &scenario.key(),
                evaluator.preprocessed(),
                evaluator.preprocess_seconds(),
            );
            match self.store.save(&record) {
                Ok(()) => {
                    self.disk_writes.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    // A write failure must not fail the job: the evaluator
                    // is valid, only the amortization across restarts is
                    // lost.
                    eprintln!("psdacc-store: could not persist {}#{npsd}: {e}", scenario.key());
                }
            }
            Ok((evaluator, FillSource::Built))
        })
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            evictions: self.store.evictions(),
            ..self.memory.stats()
        }
    }

    fn scenario_stats(&self) -> Vec<psdacc_engine::ScenarioCacheStats> {
        self.memory.scenario_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("psdacc-pcache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cold_build_persists_then_warm_process_loads() {
        let dir = tmp_dir("warm");
        let scenario = Scenario::FirCascade { stages: 1, taps: 9, cutoff: 0.3 };

        let cold = PersistentCache::open(&dir).unwrap();
        let a = cold.get_or_build(&scenario, 64).unwrap();
        let stats = PreprocessCache::stats(&cold);
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.disk_hits, 0);
        assert_eq!(stats.disk_writes, 1);
        assert_eq!(cold.store().record_count().unwrap(), 1);

        // "Restart": a fresh cache over the same directory.
        let warm = PersistentCache::open(&dir).unwrap();
        let b = warm.get_or_build(&scenario, 64).unwrap();
        let stats = PreprocessCache::stats(&warm);
        assert_eq!(stats.builds, 0, "warm start performs zero preprocessing builds");
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.disk_writes, 0);

        // The loaded evaluator is bit-identical in behavior.
        use psdacc_core::WordLengthPlan;
        use psdacc_fixed::RoundingMode;
        let plan = WordLengthPlan::uniform(11, RoundingMode::Truncate);
        assert_eq!(a.estimate_psd(&plan).power, b.estimate_psd(&plan).power);
        assert_eq!(a.preprocess_seconds(), b.preprocess_seconds(), "tau_pp metadata restored");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_lookup_in_process_is_a_memory_hit() {
        let dir = tmp_dir("memhit");
        let cache = PersistentCache::open(&dir).unwrap();
        let scenario = Scenario::FreqFilter;
        let (_, hit) = cache.get_or_build_traced(&scenario, 32).unwrap();
        assert!(!hit);
        let (_, hit) = cache.get_or_build_traced(&scenario, 32).unwrap();
        assert!(hit, "second lookup never touches disk");
        let stats = PreprocessCache::stats(&cache);
        assert_eq!((stats.builds, stats.disk_hits, stats.hits), (1, 0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_degrades_to_a_rebuild() {
        let dir = tmp_dir("degrade");
        let scenario = Scenario::FreqFilter;
        {
            let cache = PersistentCache::open(&dir).unwrap();
            cache.get_or_build(&scenario, 32).unwrap();
        }
        // Corrupt the one record on disk.
        let store = Store::open(&dir).unwrap();
        let path = store.path_for(&scenario.key(), 32);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&path, &bytes).unwrap();

        let cache = PersistentCache::open(&dir).unwrap();
        cache.get_or_build(&scenario, 32).unwrap();
        let stats = PreprocessCache::stats(&cache);
        assert_eq!(stats.builds, 1, "corrupt record rebuilt, not trusted");
        assert_eq!(stats.disk_hits, 0);
        assert_eq!(stats.disk_writes, 1, "fresh record rewritten");
        // And the rewritten record is valid again.
        assert!(store.load(&scenario.key(), 32).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_scenarios_do_not_touch_disk() {
        let dir = tmp_dir("fail");
        let cache = PersistentCache::open(&dir).unwrap();
        assert!(cache.get_or_build(&Scenario::FirBank { index: 9999 }, 32).is_err());
        assert_eq!(cache.store().record_count().unwrap(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
