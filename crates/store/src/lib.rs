//! # psdacc-store
//!
//! Disk persistence for the paper's expensive half. The PSD method's
//! economics rest on paying `tau_pp` (the per-bin graph solve into
//! [`psdacc_sfg::NodeResponses`]) once and amortizing it over thousands of
//! cheap `tau_eval` queries — but an in-memory cache amortizes only within
//! one process lifetime. This crate makes the amortization durable:
//!
//! * [`codec`] — a versioned, checksummed, hand-rolled binary format for
//!   one preprocessing record (no serde in the workspace; bit-exactness of
//!   the `f64` payload is the contract and raw little-endian bits deliver
//!   it). See the module docs for the exact byte layout, the FNV-1a
//!   checksum, and the verification order.
//! * [`layout`] — a content-addressed directory: records live at
//!   `<root>/<hash128>.npr` where the hash is derived from the canonical
//!   `(scenario key, npsd)` text; the key is also embedded in the record
//!   and verified on load, so collisions degrade to misses. Writes are
//!   tmp-file-then-rename, atomic under concurrent daemons.
//! * [`cache`] — [`PersistentCache`], an `EvaluatorCache`-compatible
//!   implementation of [`psdacc_engine::PreprocessCache`] chaining
//!   memory → disk → build. `psdacc-engine` (and the `psdacc-serve`
//!   daemon) run against it unchanged, and a restarted process serves its
//!   first batch with zero preprocessing builds.
//!
//! ```
//! use psdacc_engine::{Engine, PreprocessCache, Scenario};
//! use psdacc_store::PersistentCache;
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir().join(format!("psdacc-store-doc-{}", std::process::id()));
//! let cache = Arc::new(PersistentCache::open(&dir)?);
//! let engine = Engine::with_shared_cache(2, cache.clone());
//! // ... engine.run(jobs) builds once, persists, and every later process
//! // opening the same directory loads instead of building.
//! # let _ = engine;
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), psdacc_store::StoreError>(())
//! ```

pub mod cache;
pub mod codec;
pub mod error;
pub mod layout;

pub use cache::PersistentCache;
pub use codec::{Record, RecordFlavor};
pub use error::StoreError;
pub use layout::Store;
