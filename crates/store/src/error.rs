//! Store error type.

use psdacc_engine::EngineError;

/// Errors surfaced by the persistent preprocessing store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (path is included in the message).
    Io(String),
    /// A record failed to encode or decode (corruption, truncation,
    /// version mismatch, inconsistent dimensions).
    Codec(String),
    /// The record decoded fine but belongs to a different key than the
    /// lookup asked for (hash collision or a misplaced file).
    WrongKey {
        /// Key the lookup wanted.
        expected: String,
        /// Key the file carries.
        found: String,
    },
    /// Scenario build or preprocessing failure bubbled up from the engine.
    Engine(EngineError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "store I/O error: {msg}"),
            StoreError::Codec(msg) => write!(f, "store codec error: {msg}"),
            StoreError::WrongKey { expected, found } => {
                write!(f, "store record is for key `{found}`, lookup wanted `{expected}`")
            }
            StoreError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<EngineError> for StoreError {
    fn from(e: EngineError) -> Self {
        StoreError::Engine(e)
    }
}
