//! The on-disk record format: a hand-rolled, versioned, checksummed binary
//! codec for one preprocessing result (identity metadata plus the dense
//! payload matrix). The workspace has no serde — and would not want it
//! here: the payload is a dense `f64` matrix whose bit-exactness *is* the
//! contract.
//!
//! Since format 02 a record carries a **flavor**: single-rate records hold
//! the complex [`psdacc_sfg::NodeResponses`] matrix (one `npsd`-cell row
//! per node), multirate records hold the serialized
//! [`psdacc_sfg::MultirateResponses`] kernels (one `npsd_out + 1`-cell row
//! per node, `(variance, mean_sq)` packed as `(re, im)` with the DC path
//! in the trailing cell). Format-01 files fail the magic check and degrade
//! to a rebuild.
//!
//! # Format (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic + version: b"PSDRSP02" (bump the digits on change)
//! 8       4     u32 scenario-key byte length K (<= 4096)
//! 12      K     scenario key, UTF-8 (the canonical `Scenario::key()` text)
//! 12+K    4     u32 npsd (input-rate grid — the cache-key component)
//! 16+K    4     u32 flavor: 0 = single-rate responses, 1 = multirate kernels
//! 20+K    4     u32 node count N
//! 24+K    4     u32 row width W in complex cells (flavor 0: W == npsd)
//! 28+K    8     f64 preprocess_seconds (tau_pp paid when first computed)
//! 36+K    16*N*W  payload: row-major (re, im) f64 pairs, node-major
//! end-8   8     u64 FNV-1a checksum over every preceding byte
//! ```
//!
//! Decoding verifies, in order: minimum length, magic/version, checksum
//! (over the whole prefix, so truncation and bit rot are both caught
//! before any field is trusted), then structural consistency (declared key
//! length, flavor, and matrix dimensions must exactly account for the
//! remaining bytes). `f64` values travel as raw bits — a round trip is
//! bit-identical by construction, including negative zero and subnormals.

use psdacc_fft::Complex;
use psdacc_sfg::{MultirateResponses, NodeResponses, Preprocessed};

use crate::error::StoreError;

/// Magic prefix including the format version.
pub const MAGIC: &[u8; 8] = b"PSDRSP02";

/// Sanity bound on the embedded scenario key (real keys are tens of bytes).
const MAX_KEY_LEN: usize = 4096;

/// Which preprocessing form a record's payload encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordFlavor {
    /// Complex single-rate node responses (`rows[s][k]` = response of
    /// source `s` at bin `k`).
    SingleRate,
    /// Multirate source kernels in the
    /// [`MultirateResponses::to_rows`] layout.
    Multirate,
}

impl RecordFlavor {
    fn code(self) -> u32 {
        match self {
            RecordFlavor::SingleRate => 0,
            RecordFlavor::Multirate => 1,
        }
    }

    fn from_code(code: u32) -> Result<Self, StoreError> {
        match code {
            0 => Ok(RecordFlavor::SingleRate),
            1 => Ok(RecordFlavor::Multirate),
            other => Err(StoreError::Codec(format!("unknown record flavor {other}"))),
        }
    }
}

/// One decoded store record: identity metadata plus the payload matrix.
#[derive(Debug, Clone)]
pub struct Record {
    /// Canonical scenario key the preprocessing was computed for.
    pub scenario_key: String,
    /// Input-rate PSD grid size (cache-key component).
    pub npsd: usize,
    /// Preprocessing seconds paid when the result was first computed.
    pub preprocess_seconds: f64,
    /// Payload form.
    pub flavor: RecordFlavor,
    /// Payload rows (`rows[s]` covers source `s`; cell layout per flavor).
    pub rows: Vec<Vec<Complex>>,
}

impl Record {
    /// Captures single-rate responses for persistence.
    pub fn from_responses(
        scenario_key: &str,
        responses: &NodeResponses,
        preprocess_seconds: f64,
    ) -> Self {
        Record {
            scenario_key: scenario_key.to_string(),
            npsd: responses.npsd(),
            preprocess_seconds,
            flavor: RecordFlavor::SingleRate,
            rows: responses.rows().to_vec(),
        }
    }

    /// Captures either preprocessing form for persistence.
    pub fn from_preprocessed(
        scenario_key: &str,
        preprocessed: &Preprocessed,
        preprocess_seconds: f64,
    ) -> Self {
        match preprocessed {
            Preprocessed::SingleRate(responses) => {
                Record::from_responses(scenario_key, responses, preprocess_seconds)
            }
            Preprocessed::Multirate(kernels) => Record {
                scenario_key: scenario_key.to_string(),
                npsd: kernels.npsd(),
                preprocess_seconds,
                flavor: RecordFlavor::Multirate,
                rows: kernels.to_rows(),
            },
        }
    }

    /// Row width in complex cells (flavor-dependent).
    fn width(&self) -> usize {
        match self.rows.first() {
            Some(row) => row.len(),
            // Degenerate zero-node single-rate records (legal, tested).
            None => self.npsd,
        }
    }

    /// The wire form of [`Record::rows`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the key exceeds the format bound, or for
    /// a zero-node multirate record — `MultirateResponses::from_rows`
    /// cannot reassemble one (the kernel grid is inferred from row width),
    /// so persisting it would produce a checksum-valid file that can never
    /// convert back.
    pub fn encode(&self) -> Result<Vec<u8>, StoreError> {
        let _frame = psdacc_obs::profile::frame("store.encode");
        let key = self.scenario_key.as_bytes();
        if key.len() > MAX_KEY_LEN {
            return Err(StoreError::Codec(format!(
                "scenario key of {} bytes exceeds the {MAX_KEY_LEN}-byte format bound",
                key.len()
            )));
        }
        if self.flavor == RecordFlavor::Multirate && self.rows.is_empty() {
            return Err(StoreError::Codec(
                "multirate records need at least one source row".to_string(),
            ));
        }
        let width = self.width();
        let payload = self.rows.len() * width * 16;
        let mut buf = Vec::with_capacity(8 + 4 + key.len() + 4 + 4 + 4 + 4 + 8 + payload + 8);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
        buf.extend_from_slice(key);
        buf.extend_from_slice(&(self.npsd as u32).to_le_bytes());
        buf.extend_from_slice(&self.flavor.code().to_le_bytes());
        buf.extend_from_slice(&(self.rows.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(width as u32).to_le_bytes());
        buf.extend_from_slice(&self.preprocess_seconds.to_le_bytes());
        for row in &self.rows {
            debug_assert_eq!(row.len(), width, "rows are rectangular");
            for c in row {
                buf.extend_from_slice(&c.re.to_le_bytes());
                buf.extend_from_slice(&c.im.to_le_bytes());
            }
        }
        let checksum = fnv1a64(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        Ok(buf)
    }

    /// Parses and verifies one record.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] describing exactly which guard tripped
    /// (truncation, bad magic, checksum mismatch, inconsistent dimensions).
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        let _frame = psdacc_obs::profile::frame("store.decode");
        // Smallest possible record: empty key, zero nodes.
        let min = 8 + 4 + 4 + 4 + 4 + 4 + 8 + 8;
        if bytes.len() < min {
            return Err(StoreError::Codec(format!(
                "truncated record: {} bytes, minimum {min}",
                bytes.len()
            )));
        }
        if &bytes[..8] != MAGIC {
            return Err(StoreError::Codec(format!(
                "bad magic {:02x?} (expected {MAGIC:02x?} — wrong file or format version)",
                &bytes[..8]
            )));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        let actual = fnv1a64(body);
        if stored != actual {
            return Err(StoreError::Codec(format!(
                "checksum mismatch: stored {stored:016x}, computed {actual:016x} (corrupt or \
                 torn write)"
            )));
        }
        let mut cur = Cursor { bytes: body, pos: 8 };
        let key_len = cur.u32()? as usize;
        if key_len > MAX_KEY_LEN {
            return Err(StoreError::Codec(format!("declared key length {key_len} out of range")));
        }
        let key_bytes = cur.take(key_len)?;
        let scenario_key = std::str::from_utf8(key_bytes)
            .map_err(|e| StoreError::Codec(format!("scenario key is not UTF-8: {e}")))?
            .to_string();
        let npsd = cur.u32()? as usize;
        let flavor = RecordFlavor::from_code(cur.u32()?)?;
        let nodes = cur.u32()? as usize;
        let width = cur.u32()? as usize;
        if flavor == RecordFlavor::SingleRate && width != npsd {
            return Err(StoreError::Codec(format!(
                "single-rate record declares width {width}, expected npsd {npsd}"
            )));
        }
        if flavor == RecordFlavor::Multirate && (nodes == 0 || width < 2) {
            return Err(StoreError::Codec(format!(
                "multirate record declares {nodes} nodes x {width} cells; kernels need at \
                 least one row of one bin plus the DC cell"
            )));
        }
        let preprocess_seconds = cur.f64()?;
        let expected_payload = nodes
            .checked_mul(width)
            .and_then(|cells| cells.checked_mul(16))
            .ok_or_else(|| StoreError::Codec("payload size overflows".to_string()))?;
        if cur.remaining() != expected_payload {
            return Err(StoreError::Codec(format!(
                "payload is {} bytes, header declares {nodes} nodes x {width} cells = \
                 {expected_payload}",
                cur.remaining()
            )));
        }
        let mut rows = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let mut row = Vec::with_capacity(width);
            for _ in 0..width {
                let re = cur.f64()?;
                let im = cur.f64()?;
                row.push(Complex::new(re, im));
            }
            rows.push(row);
        }
        Ok(Record { scenario_key, npsd, preprocess_seconds, flavor, rows })
    }

    /// Converts a single-rate record's rows into [`NodeResponses`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] for multirate records or malformed rows
    /// (cannot happen for records produced by [`Record::encode`]).
    pub fn into_responses(self) -> Result<NodeResponses, StoreError> {
        match self.flavor {
            RecordFlavor::SingleRate => NodeResponses::from_rows(self.rows, self.npsd)
                .map_err(|e| StoreError::Codec(e.to_string())),
            RecordFlavor::Multirate => {
                Err(StoreError::Codec("record holds multirate kernels, not responses".to_string()))
            }
        }
    }

    /// Converts the record into the [`Preprocessed`] form it encodes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] for rows that do not reassemble (cannot happen
    /// for records produced by [`Record::encode`]).
    pub fn into_preprocessed(self) -> Result<Preprocessed, StoreError> {
        match self.flavor {
            RecordFlavor::SingleRate => self.into_responses().map(Preprocessed::SingleRate),
            RecordFlavor::Multirate => MultirateResponses::from_rows(self.rows, self.npsd)
                .map(Preprocessed::Multirate)
                .map_err(|e| StoreError::Codec(e.to_string())),
        }
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, and plenty for catching
/// truncation and bit rot (malice is out of scope for a local cache).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| StoreError::Codec("record ends mid-field".to_string()))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        Record {
            scenario_key: "fir-cascade[stages=2,taps=5,cutoff=0.2]".to_string(),
            npsd: 4,
            preprocess_seconds: 0.125,
            flavor: RecordFlavor::SingleRate,
            rows: (0..3)
                .map(|s| {
                    (0..4)
                        .map(|k| Complex::new(s as f64 + 0.1 * k as f64, -(k as f64) / 3.0))
                        .collect()
                })
                .collect(),
        }
    }

    fn multirate_sample() -> Record {
        // Width npsd_out + 1 = 5 with npsd 8 (output at rate 1/2).
        Record {
            scenario_key: "dwt-decimated[levels=1]".to_string(),
            npsd: 8,
            preprocess_seconds: 0.5,
            flavor: RecordFlavor::Multirate,
            rows: (0..2)
                .map(|s| (0..5).map(|k| Complex::new(s as f64 + k as f64, 0.25)).collect())
                .collect(),
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        for rec in [sample(), multirate_sample()] {
            let bytes = rec.encode().unwrap();
            let back = Record::decode(&bytes).unwrap();
            assert_eq!(back.scenario_key, rec.scenario_key);
            assert_eq!(back.npsd, rec.npsd);
            assert_eq!(back.flavor, rec.flavor);
            assert_eq!(back.preprocess_seconds.to_bits(), rec.preprocess_seconds.to_bits());
            assert_eq!(back.rows.len(), rec.rows.len());
            for (a, b) in back.rows.iter().zip(&rec.rows) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.re.to_bits(), y.re.to_bits());
                    assert_eq!(x.im.to_bits(), y.im.to_bits());
                }
            }
        }
    }

    #[test]
    fn special_floats_survive() {
        let mut rec = sample();
        rec.rows[0][0] = Complex::new(-0.0, f64::MIN_POSITIVE / 4.0); // subnormal
        rec.rows[0][1] = Complex::new(f64::MAX, f64::MIN);
        let back = Record::decode(&rec.encode().unwrap()).unwrap();
        assert_eq!(back.rows[0][0].re.to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.rows[0][1].re, f64::MAX);
    }

    #[test]
    fn every_truncation_is_rejected() {
        for rec in [sample(), multirate_sample()] {
            let bytes = rec.encode().unwrap();
            for len in 0..bytes.len() {
                assert!(Record::decode(&bytes[..len]).is_err(), "accepted {len}-byte prefix");
            }
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        for rec in [sample(), multirate_sample()] {
            let bytes = rec.encode().unwrap();
            for i in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[i] ^= 0x40;
                assert!(Record::decode(&bad).is_err(), "accepted flip at byte {i}");
            }
        }
    }

    #[test]
    fn wrong_magic_is_its_own_error() {
        let mut bytes = sample().encode().unwrap();
        bytes[7] = b'9';
        let err = Record::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn format_01_files_are_rejected_by_magic() {
        let mut bytes = sample().encode().unwrap();
        bytes[..8].copy_from_slice(b"PSDRSP01");
        let err = Record::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn flavor_conversions_are_checked() {
        assert!(sample().into_responses().is_ok());
        assert!(multirate_sample().into_responses().is_err());
        assert!(sample().into_preprocessed().unwrap().as_single_rate().is_some());
        assert!(multirate_sample().into_preprocessed().unwrap().as_multirate().is_some());
    }

    #[test]
    fn zero_node_record_is_legal() {
        let rec = Record {
            scenario_key: "k".to_string(),
            npsd: 8,
            preprocess_seconds: 0.0,
            flavor: RecordFlavor::SingleRate,
            rows: vec![],
        };
        let back = Record::decode(&rec.encode().unwrap()).unwrap();
        assert!(back.rows.is_empty());
    }

    #[test]
    fn zero_node_multirate_record_is_rejected_at_encode() {
        // A zero-node multirate record could never reassemble (the kernel
        // grid is inferred from row width), so encode refuses up front
        // rather than persisting a load-then-fail file.
        let rec = Record {
            scenario_key: "k".to_string(),
            npsd: 8,
            preprocess_seconds: 0.0,
            flavor: RecordFlavor::Multirate,
            rows: vec![],
        };
        let err = rec.encode().unwrap_err().to_string();
        assert!(err.contains("at least one source row"), "{err}");
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
