//! The on-disk record format: a hand-rolled, versioned, checksummed binary
//! codec for one preprocessing result (`NodeResponses` + identity
//! metadata). The workspace has no serde — and would not want it here: the
//! payload is a dense `f64` matrix whose bit-exactness *is* the contract.
//!
//! # Format (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic + version: b"PSDRSP01" (bump the digits on change)
//! 8       4     u32 scenario-key byte length K (<= 4096)
//! 12      K     scenario key, UTF-8 (the canonical `Scenario::key()` text)
//! 12+K    4     u32 npsd
//! 16+K    4     u32 node count N
//! 20+K    8     f64 preprocess_seconds (tau_pp paid when first computed)
//! 28+K    16*N*npsd   payload: row-major (re, im) f64 pairs, node-major
//! end-8   8     u64 FNV-1a checksum over every preceding byte
//! ```
//!
//! Decoding verifies, in order: minimum length, magic/version, checksum
//! (over the whole prefix, so truncation and bit rot are both caught
//! before any field is trusted), then structural consistency (declared key
//! length and matrix dimensions must exactly account for the remaining
//! bytes). `f64` values travel as raw bits — a round trip is bit-identical
//! by construction, including negative zero and subnormals.

use psdacc_fft::Complex;
use psdacc_sfg::NodeResponses;

use crate::error::StoreError;

/// Magic prefix including the format version.
pub const MAGIC: &[u8; 8] = b"PSDRSP01";

/// Sanity bound on the embedded scenario key (real keys are tens of bytes).
const MAX_KEY_LEN: usize = 4096;

/// One decoded store record: identity metadata plus the response matrix.
#[derive(Debug, Clone)]
pub struct Record {
    /// Canonical scenario key the responses were computed for.
    pub scenario_key: String,
    /// PSD grid size.
    pub npsd: usize,
    /// Preprocessing seconds paid when the responses were first computed.
    pub preprocess_seconds: f64,
    /// `rows[s][k]` = response of source `s` at bin `k`.
    pub rows: Vec<Vec<Complex>>,
}

impl Record {
    /// Captures an evaluator's responses for persistence.
    pub fn from_responses(
        scenario_key: &str,
        responses: &NodeResponses,
        preprocess_seconds: f64,
    ) -> Self {
        Record {
            scenario_key: scenario_key.to_string(),
            npsd: responses.npsd(),
            preprocess_seconds,
            rows: responses.rows().to_vec(),
        }
    }

    /// The wire form of [`Record::rows`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the key exceeds the format bound.
    pub fn encode(&self) -> Result<Vec<u8>, StoreError> {
        let key = self.scenario_key.as_bytes();
        if key.len() > MAX_KEY_LEN {
            return Err(StoreError::Codec(format!(
                "scenario key of {} bytes exceeds the {MAX_KEY_LEN}-byte format bound",
                key.len()
            )));
        }
        let payload = self.rows.len() * self.npsd * 16;
        let mut buf = Vec::with_capacity(8 + 4 + key.len() + 4 + 4 + 8 + payload + 8);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
        buf.extend_from_slice(key);
        buf.extend_from_slice(&(self.npsd as u32).to_le_bytes());
        buf.extend_from_slice(&(self.rows.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.preprocess_seconds.to_le_bytes());
        for row in &self.rows {
            debug_assert_eq!(row.len(), self.npsd, "rows are rectangular");
            for c in row {
                buf.extend_from_slice(&c.re.to_le_bytes());
                buf.extend_from_slice(&c.im.to_le_bytes());
            }
        }
        let checksum = fnv1a64(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        Ok(buf)
    }

    /// Parses and verifies one record.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] describing exactly which guard tripped
    /// (truncation, bad magic, checksum mismatch, inconsistent dimensions).
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        // Smallest possible record: empty key, zero nodes.
        let min = 8 + 4 + 4 + 4 + 8 + 8;
        if bytes.len() < min {
            return Err(StoreError::Codec(format!(
                "truncated record: {} bytes, minimum {min}",
                bytes.len()
            )));
        }
        if &bytes[..8] != MAGIC {
            return Err(StoreError::Codec(format!(
                "bad magic {:02x?} (expected {MAGIC:02x?} — wrong file or format version)",
                &bytes[..8]
            )));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        let actual = fnv1a64(body);
        if stored != actual {
            return Err(StoreError::Codec(format!(
                "checksum mismatch: stored {stored:016x}, computed {actual:016x} (corrupt or \
                 torn write)"
            )));
        }
        let mut cur = Cursor { bytes: body, pos: 8 };
        let key_len = cur.u32()? as usize;
        if key_len > MAX_KEY_LEN {
            return Err(StoreError::Codec(format!("declared key length {key_len} out of range")));
        }
        let key_bytes = cur.take(key_len)?;
        let scenario_key = std::str::from_utf8(key_bytes)
            .map_err(|e| StoreError::Codec(format!("scenario key is not UTF-8: {e}")))?
            .to_string();
        let npsd = cur.u32()? as usize;
        let nodes = cur.u32()? as usize;
        let preprocess_seconds = cur.f64()?;
        let expected_payload = nodes
            .checked_mul(npsd)
            .and_then(|cells| cells.checked_mul(16))
            .ok_or_else(|| StoreError::Codec("payload size overflows".to_string()))?;
        if cur.remaining() != expected_payload {
            return Err(StoreError::Codec(format!(
                "payload is {} bytes, header declares {nodes} nodes x {npsd} bins = \
                 {expected_payload}",
                cur.remaining()
            )));
        }
        let mut rows = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let mut row = Vec::with_capacity(npsd);
            for _ in 0..npsd {
                let re = cur.f64()?;
                let im = cur.f64()?;
                row.push(Complex::new(re, im));
            }
            rows.push(row);
        }
        Ok(Record { scenario_key, npsd, preprocess_seconds, rows })
    }

    /// Converts the decoded rows into [`NodeResponses`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the rows do not form a valid response set
    /// (cannot happen for records produced by [`Record::encode`]).
    pub fn into_responses(self) -> Result<NodeResponses, StoreError> {
        NodeResponses::from_rows(self.rows, self.npsd).map_err(|e| StoreError::Codec(e.to_string()))
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, and plenty for catching
/// truncation and bit rot (malice is out of scope for a local cache).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| StoreError::Codec("record ends mid-field".to_string()))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        Record {
            scenario_key: "fir-cascade[stages=2,taps=5,cutoff=0.2]".to_string(),
            npsd: 4,
            preprocess_seconds: 0.125,
            rows: (0..3)
                .map(|s| {
                    (0..4)
                        .map(|k| Complex::new(s as f64 + 0.1 * k as f64, -(k as f64) / 3.0))
                        .collect()
                })
                .collect(),
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let rec = sample();
        let bytes = rec.encode().unwrap();
        let back = Record::decode(&bytes).unwrap();
        assert_eq!(back.scenario_key, rec.scenario_key);
        assert_eq!(back.npsd, rec.npsd);
        assert_eq!(back.preprocess_seconds.to_bits(), rec.preprocess_seconds.to_bits());
        assert_eq!(back.rows.len(), rec.rows.len());
        for (a, b) in back.rows.iter().zip(&rec.rows) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.re.to_bits(), y.re.to_bits());
                assert_eq!(x.im.to_bits(), y.im.to_bits());
            }
        }
    }

    #[test]
    fn special_floats_survive() {
        let mut rec = sample();
        rec.rows[0][0] = Complex::new(-0.0, f64::MIN_POSITIVE / 4.0); // subnormal
        rec.rows[0][1] = Complex::new(f64::MAX, f64::MIN);
        let back = Record::decode(&rec.encode().unwrap()).unwrap();
        assert_eq!(back.rows[0][0].re.to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.rows[0][1].re, f64::MAX);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().encode().unwrap();
        for len in 0..bytes.len() {
            assert!(Record::decode(&bytes[..len]).is_err(), "accepted {len}-byte prefix");
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let bytes = sample().encode().unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(Record::decode(&bad).is_err(), "accepted flip at byte {i}");
        }
    }

    #[test]
    fn wrong_magic_is_its_own_error() {
        let mut bytes = sample().encode().unwrap();
        bytes[7] = b'9';
        let err = Record::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn zero_node_record_is_legal() {
        let rec = Record {
            scenario_key: "k".to_string(),
            npsd: 8,
            preprocess_seconds: 0.0,
            rows: vec![],
        };
        let back = Record::decode(&rec.encode().unwrap()).unwrap();
        assert!(back.rows.is_empty());
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
