//! Content-addressed on-disk layout and atomic file I/O.
//!
//! One record per `(scenario key, npsd)` pair. The address is derived from
//! the canonical key text — `<root>/<h1><h2>.npr` where `h1`/`h2` are two
//! independent 64-bit FNV-1a hashes of `"<key>#<npsd>"` (128 address bits;
//! the full key is also embedded in the record and verified on load, so a
//! hash collision degrades to a cache miss, never to wrong data).
//!
//! # Atomicity under concurrent daemons
//!
//! Writers never touch the final path directly: the record goes to a
//! uniquely-named `.tmp-*` sibling, is flushed, then `rename(2)`d into
//! place. Readers therefore observe either no file or a complete record;
//! two daemons racing on the same key both write valid files and the last
//! rename wins — both contents are equivalent by construction (the codec
//! is deterministic and the responses are a pure function of the key).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec::{fnv1a64, Record};
use crate::error::StoreError;

/// File extension for store records ("node-response preprocessing").
pub const EXTENSION: &str = "npr";

/// A directory of persisted preprocessing records, optionally capped to a
/// maximum record count with least-recently-used eviction (recency =
/// modification time; loads touch it, so hot entries survive).
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    max_entries: Option<usize>,
    evictions: AtomicU64,
}

/// Distinguishes tmp files written by this process (pid alone is not
/// enough: two threads of one daemon may race on the same key).
static TMP_NONCE: AtomicU64 = AtomicU64::new(0);

impl Store {
    /// Opens (creating if needed) an uncapped store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_with_limit(root, None)
    }

    /// Opens a store capped at `max_entries` records (LRU by mtime). A cap
    /// of `Some(0)` is treated as unlimited (a store that can hold nothing
    /// is a misconfiguration, not a useful mode).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open_with_limit(
        root: impl Into<PathBuf>,
        max_entries: Option<usize>,
    ) -> Result<Self, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| StoreError::Io(format!("create {}: {e}", root.display())))?;
        Ok(Store {
            root,
            max_entries: max_entries.filter(|&n| n > 0),
            evictions: AtomicU64::new(0),
        })
    }

    /// The configured record-count cap, if any.
    pub fn max_entries(&self) -> Option<usize> {
        self.max_entries
    }

    /// Records evicted by this store instance (LRU cap enforcement).
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed) as usize
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The record path for one `(scenario key, npsd)` address.
    pub fn path_for(&self, scenario_key: &str, npsd: usize) -> PathBuf {
        let address = format!("{scenario_key}#{npsd}");
        let h1 = fnv1a64(address.as_bytes());
        // Second, independent hash: same function over the reversed bytes
        // with the first hash mixed in, decorrelating the two words.
        let reversed: Vec<u8> = address.bytes().rev().collect();
        let h2 = fnv1a64(&reversed) ^ h1.rotate_left(32);
        self.root.join(format!("{h1:016x}{h2:016x}.{EXTENSION}"))
    }

    /// Loads the record for `(scenario_key, npsd)`.
    ///
    /// Returns `Ok(None)` when no record exists. A record that exists but
    /// fails verification (corrupt, truncated, or carrying a different
    /// key) is an error — callers decide whether to treat it as a miss.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::Codec`] / [`StoreError::WrongKey`].
    pub fn load(&self, scenario_key: &str, npsd: usize) -> Result<Option<Record>, StoreError> {
        let path = self.path_for(scenario_key, npsd);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(format!("read {}: {e}", path.display()))),
        };
        let record = Record::decode(&bytes)?;
        if record.scenario_key != scenario_key || record.npsd != npsd {
            return Err(StoreError::WrongKey {
                expected: format!("{scenario_key}#{npsd}"),
                found: format!("{}#{}", record.scenario_key, record.npsd),
            });
        }
        // Touch the record so LRU eviction sees it as recently used
        // (best-effort: a read-only store still serves loads).
        if self.max_entries.is_some() {
            if let Ok(file) = std::fs::File::options().append(true).open(&path) {
                let _ = file.set_modified(std::time::SystemTime::now());
            }
        }
        Ok(Some(record))
    }

    /// Persists a record atomically (tmp file + rename).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::Codec`].
    pub fn save(&self, record: &Record) -> Result<(), StoreError> {
        let path = self.path_for(&record.scenario_key, record.npsd);
        let bytes = record.encode()?;
        let nonce = TMP_NONCE.fetch_add(1, Ordering::Relaxed);
        // The tmp suffix comes last so a crash-leftover tmp file has a
        // non-`npr` extension and is never counted (or loaded) as a record.
        let tmp = self.root.join(format!(
            "{}.tmp-{}-{nonce}",
            path.file_name().and_then(|n| n.to_str()).unwrap_or(EXTENSION),
            std::process::id(),
        ));
        let write = (|| -> std::io::Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut file, &bytes)?;
            // Flush to stable storage before the rename publishes the file,
            // so a crash cannot leave a published-but-empty record.
            file.sync_all()?;
            std::fs::rename(&tmp, &path)
        })();
        if let Err(e) = write {
            let _ = std::fs::remove_file(&tmp);
            return Err(StoreError::Io(format!("write {}: {e}", path.display())));
        }
        self.enforce_limit(&path);
        Ok(())
    }

    /// Evicts the least-recently-used records (by mtime) until the store
    /// is back within `max_entries`. Best-effort: eviction failures cost
    /// disk space, never correctness, so they are logged and swallowed.
    /// The record just written is never evicted — under a cap of 1 the
    /// newest entry is the one worth keeping.
    fn enforce_limit(&self, just_written: &Path) {
        let Some(cap) = self.max_entries else { return };
        let entries = match std::fs::read_dir(&self.root) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("psdacc-store: cannot scan {} for eviction: {e}", self.root.display());
                return;
            }
        };
        let mut records: Vec<(std::time::SystemTime, PathBuf)> = entries
            .filter_map(|entry| {
                let path = entry.ok()?.path();
                if path.extension().and_then(|x| x.to_str()) != Some(EXTENSION)
                    || path == just_written
                {
                    return None;
                }
                let mtime = path.metadata().and_then(|m| m.modified()).ok()?;
                Some((mtime, path))
            })
            .collect();
        // `records` excludes the protected fresh write, so the cap leaves
        // room for it: keep at most `cap - 1` others.
        let keep = cap.saturating_sub(1);
        if records.len() <= keep {
            return;
        }
        records.sort_by_key(|(mtime, _)| *mtime);
        for (_, path) in records.drain(..records.len() - keep) {
            match std::fs::remove_file(&path) {
                Ok(()) => {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => eprintln!("psdacc-store: cannot evict {}: {e}", path.display()),
            }
        }
    }

    /// Removes the record for one address (used to clear corrupt files so
    /// the next build can rewrite them). Missing files are fine.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] for anything except "not found".
    pub fn remove(&self, scenario_key: &str, npsd: usize) -> Result<(), StoreError> {
        let path = self.path_for(scenario_key, npsd);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::Io(format!("remove {}: {e}", path.display()))),
        }
    }

    /// Number of records currently on disk (scans the root directory).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be read.
    pub fn record_count(&self) -> Result<usize, StoreError> {
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| StoreError::Io(format!("read {}: {e}", self.root.display())))?;
        let mut count = 0;
        for entry in entries {
            let entry =
                entry.map_err(|e| StoreError::Io(format!("scan {}: {e}", self.root.display())))?;
            if entry.path().extension().and_then(|x| x.to_str()) == Some(EXTENSION) {
                count += 1;
            }
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdacc_fft::Complex;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("psdacc-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(key: &str, npsd: usize) -> Record {
        Record {
            scenario_key: key.to_string(),
            npsd,
            preprocess_seconds: 0.5,
            flavor: crate::codec::RecordFlavor::SingleRate,
            rows: vec![vec![Complex::new(1.0, -2.0); npsd]; 2],
        }
    }

    /// Pins a record file's mtime (so LRU ordering is deterministic in
    /// tests, no sleeps).
    fn set_mtime(store: &Store, key: &str, npsd: usize, seconds: u64) {
        let path = store.path_for(key, npsd);
        let file = std::fs::File::options().append(true).open(path).unwrap();
        file.set_modified(std::time::UNIX_EPOCH + std::time::Duration::from_secs(seconds)).unwrap();
    }

    #[test]
    fn save_load_remove_cycle() {
        let store = Store::open(tmp_root("cycle")).unwrap();
        assert!(store.load("k", 8).unwrap().is_none(), "empty store misses");
        store.save(&record("k", 8)).unwrap();
        let back = store.load("k", 8).unwrap().expect("record exists");
        assert_eq!(back.scenario_key, "k");
        assert_eq!(store.record_count().unwrap(), 1);
        // npsd is part of the address.
        assert!(store.load("k", 16).unwrap().is_none());
        store.remove("k", 8).unwrap();
        assert!(store.load("k", 8).unwrap().is_none());
        store.remove("k", 8).unwrap(); // idempotent
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn distinct_addresses_do_not_collide_in_practice() {
        let store = Store::open(tmp_root("addr")).unwrap();
        let mut paths = std::collections::HashSet::new();
        for i in 0..147 {
            for npsd in [128usize, 256] {
                assert!(paths.insert(store.path_for(&format!("fir-bank[index={i}]"), npsd)));
            }
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_file_is_an_error_not_wrong_data() {
        let store = Store::open(tmp_root("corrupt")).unwrap();
        store.save(&record("k", 4)).unwrap();
        let path = store.path_for("k", 4);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(store.load("k", 4), Err(StoreError::Codec(_))));
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn foreign_key_in_the_slot_is_rejected() {
        let store = Store::open(tmp_root("foreign")).unwrap();
        // Simulate a collision: write a record for key `a` into `b`'s path.
        let rec = record("a", 4);
        let bytes = rec.encode().unwrap();
        std::fs::write(store.path_for("b", 4), bytes).unwrap();
        assert!(matches!(store.load("b", 4), Err(StoreError::WrongKey { .. })));
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn no_tmp_litter_after_saves() {
        let store = Store::open(tmp_root("litter")).unwrap();
        for i in 0..5 {
            store.save(&record(&format!("k{i}"), 4)).unwrap();
        }
        let leftovers: Vec<_> = std::fs::read_dir(store.root())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn max_entries_cap_is_enforced_lru() {
        let store = Store::open_with_limit(tmp_root("evict"), Some(2)).unwrap();
        assert_eq!(store.max_entries(), Some(2));
        store.save(&record("k0", 4)).unwrap();
        set_mtime(&store, "k0", 4, 1000);
        store.save(&record("k1", 4)).unwrap();
        set_mtime(&store, "k1", 4, 2000);
        store.save(&record("k2", 4)).unwrap();
        assert_eq!(store.record_count().unwrap(), 2, "cap enforced");
        assert!(store.load("k0", 4).unwrap().is_none(), "oldest evicted");
        assert!(store.load("k1", 4).unwrap().is_some());
        assert!(store.load("k2", 4).unwrap().is_some());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn loads_keep_hot_entries_alive() {
        let store = Store::open_with_limit(tmp_root("hot"), Some(2)).unwrap();
        store.save(&record("hot", 4)).unwrap();
        set_mtime(&store, "hot", 4, 1000);
        store.save(&record("cold", 4)).unwrap();
        set_mtime(&store, "cold", 4, 2000);
        // Touch the older record: the load bumps its mtime past "cold".
        assert!(store.load("hot", 4).unwrap().is_some());
        store.save(&record("k2", 4)).unwrap();
        assert_eq!(store.record_count().unwrap(), 2);
        assert!(store.load("hot", 4).unwrap().is_some(), "hot entry survived");
        assert!(store.load("cold", 4).unwrap().is_none(), "cold entry evicted");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn zero_cap_means_unlimited() {
        let store = Store::open_with_limit(tmp_root("zerocap"), Some(0)).unwrap();
        assert_eq!(store.max_entries(), None);
        for i in 0..4 {
            store.save(&record(&format!("k{i}"), 4)).unwrap();
        }
        assert_eq!(store.record_count().unwrap(), 4);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn crash_leftover_tmp_files_are_not_counted_as_records() {
        let store = Store::open(tmp_root("leftover")).unwrap();
        store.save(&record("k", 4)).unwrap();
        // Simulate a crash between create and rename.
        let stranded = store.root().join("deadbeef.npr.tmp-1-0");
        std::fs::write(&stranded, b"partial").unwrap();
        assert_eq!(store.record_count().unwrap(), 1, "tmp litter is not a record");
        let _ = std::fs::remove_dir_all(store.root());
    }
}
