//! Store behavior for runtime-defined (`GraphSpec`) scenarios: keying by
//! canonical content hash, warm restarts, and eviction parity with the
//! builtin families.

use std::sync::Arc;

use psdacc_engine::{
    Engine, GraphScenario, JobKind, JobSpec, PreprocessCache, Scenario, ScenarioRegistry,
};
use psdacc_fixed::RoundingMode;
use psdacc_store::{PersistentCache, Store};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("psdacc-dyn-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn graph_json(gain: f64) -> String {
    format!(
        r#"{{"nodes":[{{"name":"x","block":"input"}},
                      {{"name":"lp","block":"fir","taps":[0.5,0.25,0.125],"inputs":["x"]}},
                      {{"name":"d","block":"downsample","factor":2,"inputs":["lp"]}},
                      {{"name":"u","block":"upsample","factor":2,"inputs":["d"]}},
                      {{"name":"post","block":"gain","gain":{gain},"inputs":["u"]}}],
            "outputs":["post"]}}"#
    )
}

fn scenario(gain: f64) -> Scenario {
    Scenario::Graph(GraphScenario::from_json(&graph_json(gain), None).unwrap())
}

#[test]
fn distinct_graph_specs_never_collide_on_disk() {
    let store = Store::open(tmp_dir("collide")).unwrap();
    let mut paths = std::collections::HashSet::new();
    // Many near-identical specs (one coefficient sweeping) plus npsd
    // variants: every (content hash, npsd) address must be unique.
    for i in 0..64 {
        let s = scenario(0.25 + i as f64 * 1e-6);
        for npsd in [64usize, 128] {
            assert!(
                paths.insert(store.path_for(&s.key(), npsd)),
                "address collision for {} npsd={npsd}",
                s.key()
            );
        }
    }
    // And distinct from every builtin family's addresses.
    for family in ["fir-bank[index=3]", "dwt-decimated[levels=2]", "freq-filter"] {
        assert!(paths.insert(store.path_for(family, 64)));
    }
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn re_registered_identical_spec_warm_starts_with_zero_builds() {
    let dir = tmp_dir("warm");
    let job = |s: Scenario| JobSpec {
        scenario: s,
        npsd: 64,
        rounding: RoundingMode::Truncate,
        kind: JobKind::Estimate { method: psdacc_core::Method::PsdMethod, frac_bits: 10 },
    };

    // Cold daemon: define the scenario (via one registry), evaluate, let
    // the preprocessing persist.
    let cold_power = {
        let registry = ScenarioRegistry::new();
        registry.define_graph_json("codec", &graph_json(0.25)).unwrap();
        let s = registry.parse_spec_line("codec").unwrap();
        let cache = Arc::new(PersistentCache::open(&dir).unwrap());
        let engine = Engine::with_shared_cache(1, cache.clone());
        let report = engine.run(vec![job(s)]);
        assert_eq!(report.failures().count(), 0);
        let stats = PreprocessCache::stats(cache.as_ref());
        assert_eq!((stats.builds, stats.disk_writes, stats.disk_hits), (1, 1, 0));
        report.results[0].power.unwrap()
    };

    // "Restart": a fresh registry (the definition re-registered, as a
    // daemon restart + re-define would do) over the same store directory.
    // Identical content -> identical hash -> disk warm, zero builds.
    let registry = ScenarioRegistry::new();
    registry.define_graph_json("renamed-codec", &graph_json(0.25)).unwrap();
    let s = registry.parse_spec_line("renamed-codec").unwrap();
    let cache = Arc::new(PersistentCache::open(&dir).unwrap());
    let engine = Engine::with_shared_cache(1, cache.clone());
    let report = engine.run(vec![job(s)]);
    assert_eq!(report.failures().count(), 0);
    let stats = PreprocessCache::stats(cache.as_ref());
    assert_eq!(stats.builds, 0, "re-registered identical spec performs zero builds");
    assert_eq!(stats.disk_hits, 1);
    assert_eq!(report.results[0].power.unwrap(), cold_power, "bit-identical across restart");

    // A one-coefficient change is a different identity: cold again.
    let changed = Scenario::Graph(GraphScenario::from_json(&graph_json(0.26), None).unwrap());
    let report = engine.run(vec![job(changed)]);
    assert_eq!(report.failures().count(), 0);
    let stats = PreprocessCache::stats(cache.as_ref());
    assert_eq!(stats.builds, 1, "changed content rebuilds");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lru_eviction_treats_dynamic_entries_like_builtins() {
    let dir = tmp_dir("lru");
    let cache = PersistentCache::open_with_limit(&dir, Some(2)).unwrap();
    let dynamic = scenario(0.5);
    let builtin = Scenario::FirCascade { stages: 1, taps: 9, cutoff: 0.3 };
    let builtin2 = Scenario::FreqFilter;

    // Fill: dynamic first, then two builtins -> the cap of 2 must evict
    // the *oldest* record (the dynamic one), not privilege either kind.
    cache.get_or_build(&dynamic, 64).unwrap();
    let set_mtime = |key: &str, secs: u64| {
        let path = cache.store().path_for(key, 64);
        let file = std::fs::File::options().append(true).open(path).unwrap();
        file.set_modified(std::time::UNIX_EPOCH + std::time::Duration::from_secs(secs)).unwrap();
    };
    set_mtime(&dynamic.key(), 1000);
    cache.get_or_build(&builtin, 64).unwrap();
    set_mtime(&builtin.key(), 2000);
    cache.get_or_build(&builtin2, 64).unwrap();
    assert_eq!(cache.store().record_count().unwrap(), 2);
    assert!(
        cache.store().load(&dynamic.key(), 64).unwrap().is_none(),
        "oldest (dynamic) evicted under pressure"
    );

    // Mirror-image: builtin oldest, dynamic hot -> builtin evicted.
    let dir2 = tmp_dir("lru2");
    let cache2 = PersistentCache::open_with_limit(&dir2, Some(2)).unwrap();
    cache2.get_or_build(&builtin, 64).unwrap();
    let set_mtime2 = |key: &str, secs: u64| {
        let path = cache2.store().path_for(key, 64);
        let file = std::fs::File::options().append(true).open(path).unwrap();
        file.set_modified(std::time::UNIX_EPOCH + std::time::Duration::from_secs(secs)).unwrap();
    };
    cache2.get_or_build(&dynamic, 64).unwrap();
    set_mtime2(&builtin.key(), 1000);
    set_mtime2(&dynamic.key(), 2000);
    cache2.get_or_build(&builtin2, 64).unwrap();
    assert_eq!(cache2.store().record_count().unwrap(), 2);
    assert!(cache2.store().load(&builtin.key(), 64).unwrap().is_none(), "builtin evicted");
    assert!(cache2.store().load(&dynamic.key(), 64).unwrap().is_some(), "dynamic survived");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn multirate_dynamic_records_round_trip_the_codec() {
    // The demo graph is true multirate (downsample/upsample), so this also
    // proves dynamic scenarios hit the format-02 multirate record flavor.
    let dir = tmp_dir("flavor");
    let s = scenario(0.75);
    {
        let cache = PersistentCache::open(&dir).unwrap();
        cache.get_or_build(&s, 64).unwrap();
    }
    let store = Store::open(&dir).unwrap();
    let record = store.load(&s.key(), 64).unwrap().expect("record persisted");
    assert_eq!(record.scenario_key, s.key());
    let warm = PersistentCache::open(&dir).unwrap();
    warm.get_or_build(&s, 64).unwrap();
    let stats = PreprocessCache::stats(&warm);
    assert_eq!((stats.builds, stats.disk_hits), (0, 1));
    let _ = std::fs::remove_dir_all(&dir);
}
