//! Store behavior for measured-signal scenarios (PR 10): preprocessed
//! responses of graphs with estimated-PSD sources persist and warm-start
//! like any other kernel, keyed by the scenario's full parameter set —
//! seed included, since the seed determines the trace and therefore the
//! spectrum.

use std::sync::Arc;

use psdacc_engine::{
    Engine, GraphScenario, JobKind, JobSpec, PreprocessCache, Scenario, ScenarioRegistry,
};
use psdacc_fixed::RoundingMode;
use psdacc_store::{PersistentCache, Store};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("psdacc-meas-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn estim_scenarios() -> Vec<Scenario> {
    let registry = ScenarioRegistry::new();
    [
        "measured-welch samples=1024 nfft=128 seed=5",
        "cross-spectrum samples=2048 nfft=64 snr=12",
        "sigma-delta order=2 osr=8 samples=4096 nfft=256",
    ]
    .iter()
    .map(|line| registry.parse_spec_line(line).unwrap())
    .collect()
}

fn job(s: Scenario) -> JobSpec {
    JobSpec {
        scenario: s,
        npsd: 128,
        rounding: RoundingMode::RoundNearest,
        kind: JobKind::Estimate { method: psdacc_core::Method::PsdMethod, frac_bits: 12 },
    }
}

#[test]
fn estim_scenario_addresses_are_seed_sensitive_and_collision_free() {
    let store = Store::open(tmp_dir("addr")).unwrap();
    let registry = ScenarioRegistry::new();
    let mut paths = std::collections::HashSet::new();
    // The seed is part of the key: two daemons disagreeing on it would
    // compute different spectra under the same disk address otherwise.
    for seed in 0..32 {
        let s = registry
            .parse_spec_line(&format!("measured-welch samples=512 nfft=64 seed={seed}"))
            .unwrap();
        assert!(s.key().contains(&format!("seed={seed}")), "{}", s.key());
        assert!(paths.insert(store.path_for(&s.key(), 64)), "collision at seed {seed}");
    }
    for line in
        ["cross-spectrum snr=3", "sigma-delta osr=8", "sigma-delta osr=16", "fir-bank index=3"]
    {
        let s = registry.parse_spec_line(line).unwrap();
        assert!(paths.insert(store.path_for(&s.key(), 64)), "{line}");
    }
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn measured_kernels_warm_start_with_zero_builds() {
    let dir = tmp_dir("warm");
    let scenarios = estim_scenarios();

    // Cold: build, evaluate, persist one kernel record per scenario.
    let cold_powers: Vec<f64> = {
        let cache = Arc::new(PersistentCache::open(&dir).unwrap());
        let engine = Engine::with_shared_cache(2, cache.clone());
        let report = engine.run(scenarios.iter().cloned().map(job).collect());
        assert_eq!(report.failures().count(), 0);
        let stats = PreprocessCache::stats(cache.as_ref());
        assert_eq!((stats.builds, stats.disk_writes, stats.disk_hits), (3, 3, 0));
        report.results.iter().map(|r| r.power.unwrap()).collect()
    };

    // Warm: a fresh engine over the same store re-estimates nothing —
    // the responses load from disk and the measured bins rebuild from
    // the scenario seed, meeting bit-identically in the evaluator.
    let cache = Arc::new(PersistentCache::open(&dir).unwrap());
    let engine = Engine::with_shared_cache(2, cache.clone());
    let report = engine.run(scenarios.iter().cloned().map(job).collect());
    assert_eq!(report.failures().count(), 0);
    let stats = PreprocessCache::stats(cache.as_ref());
    assert_eq!(stats.builds, 0, "warm start must not preprocess");
    assert_eq!(stats.disk_hits, 3);
    for (r, want) in report.results.iter().zip(&cold_powers) {
        assert_eq!(r.power, Some(*want), "cold/warm powers must be bit-identical");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graph_spec_with_inline_samples_persists_by_content_hash() {
    let dir = tmp_dir("inline");
    // Two graphs differing in exactly one recorded sample must land at
    // different addresses; identical content re-registered warm-starts.
    let graph = |last: f64| {
        format!(
            r#"{{"nodes":[{{"name":"x","block":"input"}},
                {{"name":"m","block":"measured","samples":[0.01,-0.02,0.015,0.03,-0.01,0.02,0.01,{last}],"nfft":8}},
                {{"name":"s","block":"add","inputs":["x","m"]}}],
                "outputs":["s"]}}"#
        )
    };
    let a = Scenario::Graph(GraphScenario::from_json(&graph(0.005), None).unwrap());
    let b = Scenario::Graph(GraphScenario::from_json(&graph(0.006), None).unwrap());
    assert_ne!(a.key(), b.key(), "one sample flipped, new content hash");

    let cold_power = {
        let cache = Arc::new(PersistentCache::open(&dir).unwrap());
        let engine = Engine::with_shared_cache(1, cache.clone());
        let report = engine.run(vec![job(a.clone())]);
        assert_eq!(report.failures().count(), 0);
        report.results[0].power.unwrap()
    };
    let cache = Arc::new(PersistentCache::open(&dir).unwrap());
    let engine = Engine::with_shared_cache(1, cache.clone());
    let report = engine.run(vec![job(a)]);
    let stats = PreprocessCache::stats(cache.as_ref());
    assert_eq!((stats.builds, stats.disk_hits), (0, 1), "identical content warm-starts");
    assert_eq!(report.results[0].power, Some(cold_power));
    let _ = std::fs::remove_dir_all(&dir);
}
