//! Golden round-trip and engine-level persistence tests: whatever the
//! preprocessing computed, the store must return **bit-identically**, and
//! an engine over a warm store must do zero preprocessing work.

use std::path::PathBuf;
use std::sync::Arc;

use psdacc_core::{AccuracyEvaluator, Method};
use psdacc_engine::{Engine, JobKind, JobSpec, PreprocessCache, Scenario};
use psdacc_fixed::RoundingMode;
use psdacc_store::{PersistentCache, Record, Store};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psdacc-store-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every response of every node of a real preprocessing pass survives the
/// encode → disk → decode cycle with identical bits.
#[test]
fn golden_round_trip_is_bit_identical() {
    let scenarios = [
        Scenario::FirBank { index: 7 },
        Scenario::IirCascade { stages: 2, order: 4, cutoff: 0.15 },
        Scenario::DwtPipeline { levels: 2 },
        Scenario::DwtDecimated { levels: 2 },
        Scenario::DwtPacket { depth: 1 },
        Scenario::RandomSfg { nodes: 18, seed: 3 },
    ];
    let dir = tmp_dir("golden");
    let store = Store::open(&dir).unwrap();
    for scenario in &scenarios {
        let key = scenario.key();
        let sfg = scenario.build().unwrap();
        let evaluator = AccuracyEvaluator::new(&sfg, 128).unwrap();
        let original = Record::from_preprocessed(
            &key,
            evaluator.preprocessed(),
            evaluator.preprocess_seconds(),
        );
        store.save(&original).unwrap();
        let record = store.load(&key, 128).unwrap().expect("saved record loads");
        assert_eq!(record.scenario_key, key);
        assert_eq!(record.npsd, 128);
        assert_eq!(record.flavor, original.flavor);
        assert_eq!(record.preprocess_seconds.to_bits(), evaluator.preprocess_seconds().to_bits());
        assert_eq!(record.rows.len(), original.rows.len(), "{key}: node count");
        for (node, (got, want)) in record.rows.iter().zip(&original.rows).enumerate() {
            assert_eq!(got.len(), want.len(), "{key} node {node}: row width");
            for (bin, (g, w)) in got.iter().zip(want).enumerate() {
                assert_eq!(g.re.to_bits(), w.re.to_bits(), "{key} node {node} bin {bin} re");
                assert_eq!(g.im.to_bits(), w.im.to_bits(), "{key} node {node} bin {bin} im");
            }
        }
    }
    assert_eq!(store.record_count().unwrap(), scenarios.len());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncations and corruptions of a real on-disk record are rejected, and
/// the persistent cache recovers by rebuilding.
#[test]
fn real_record_rejects_truncation_and_corruption() {
    let dir = tmp_dir("reject");
    let store = Store::open(&dir).unwrap();
    let scenario = Scenario::FreqFilter;
    let sfg = scenario.build().unwrap();
    let evaluator = AccuracyEvaluator::new(&sfg, 64).unwrap();
    store
        .save(&Record::from_preprocessed(&scenario.key(), evaluator.preprocessed(), 0.25))
        .unwrap();
    let path = store.path_for(&scenario.key(), 64);
    let bytes = std::fs::read(&path).unwrap();

    // Truncations at a spread of prefix lengths (every length is covered
    // by the codec unit tests; here we prove the store surface rejects).
    for frac in [0, 1, 7, 8, 20, 99] {
        let len = bytes.len() * frac / 100;
        std::fs::write(&path, &bytes[..len]).unwrap();
        assert!(store.load(&scenario.key(), 64).is_err(), "accepted {len}-byte truncation");
    }
    // Single-bit corruption deep in the payload.
    let mut bad = bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x01;
    std::fs::write(&path, &bad).unwrap();
    assert!(store.load(&scenario.key(), 64).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance-criteria shape at the engine level: a cold engine builds
/// and persists; a "restarted" engine over the same directory serves the
/// same batch bit-identically with zero preprocessing builds.
#[test]
fn warm_engine_serves_bit_identical_results_with_zero_builds() {
    let dir = tmp_dir("engine");
    let jobs: Vec<JobSpec> = [
        Scenario::FirCascade { stages: 2, taps: 15, cutoff: 0.2 },
        Scenario::FreqFilter,
        Scenario::DwtPipeline { levels: 1 },
        Scenario::DwtDecimated { levels: 2 },
    ]
    .into_iter()
    .flat_map(|scenario| {
        (8..12).map(move |bits| JobSpec {
            scenario: scenario.clone(),
            npsd: 128,
            rounding: RoundingMode::Truncate,
            kind: JobKind::Estimate { method: Method::PsdMethod, frac_bits: bits },
        })
    })
    .collect();

    let cold_cache = Arc::new(PersistentCache::open(&dir).unwrap());
    let cold = Engine::with_shared_cache(4, cold_cache.clone()).run(jobs.clone());
    assert_eq!(cold.failures().count(), 0);
    assert_eq!(cold.cache.builds, 4, "one build per distinct scenario");
    assert_eq!(cold.cache.disk_writes, 4);
    assert_eq!(cold_cache.store().record_count().unwrap(), 4);

    let warm_cache = Arc::new(PersistentCache::open(&dir).unwrap());
    let warm = Engine::with_shared_cache(4, warm_cache).run(jobs);
    assert_eq!(warm.failures().count(), 0);
    assert_eq!(warm.cache.builds, 0, "warm restart: zero preprocessing builds");
    assert_eq!(warm.cache.disk_hits, 4);

    for (a, b) in cold.results.iter().zip(&warm.results) {
        assert_eq!(a.power, b.power, "job {}", a.job);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.variance, b.variance);
        assert_eq!(a.sqnr_db, b.sqnr_db);
        assert_eq!(a.tau_pp_seconds, b.tau_pp_seconds, "tau_pp metadata restored from disk");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two caches over one directory (concurrent daemons on shared storage):
/// racing writers must never produce a torn record.
#[test]
fn concurrent_caches_share_one_store_safely() {
    let dir = tmp_dir("race");
    let scenario = Scenario::FirCascade { stages: 1, taps: 21, cutoff: 0.25 };
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let dir = dir.clone();
            let scenario = scenario.clone();
            scope.spawn(move || {
                let cache = PersistentCache::open(&dir).unwrap();
                let evaluator = cache.get_or_build(&scenario, 96).unwrap();
                assert_eq!(evaluator.npsd(), 96);
            });
        }
    });
    // Whoever won the race, the surviving record is valid and loadable.
    let store = Store::open(&dir).unwrap();
    let record = store.load(&scenario.key(), 96).unwrap().expect("record exists");
    assert_eq!(record.npsd, 96);
    assert_eq!(store.record_count().unwrap(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
