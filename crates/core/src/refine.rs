//! Word-length refinement on top of the PSD evaluator — the use case the
//! paper's introduction motivates (fixed-point refinement needs thousands
//! of accuracy evaluations; the PSD method's cheap `tau_eval` makes the
//! loop tractable).
//!
//! Two strategies:
//!
//! * [`minimum_uniform_wordlength`] — binary search for the smallest
//!   uniform `d` meeting a noise-power budget;
//! * [`greedy_refinement`] — per-source descent: repeatedly shave one bit
//!   off the node whose cost/noise trade is best while the budget holds
//!   (the classic greedy word-length optimization inner loop).

use std::collections::HashMap;

use psdacc_fixed::RoundingMode;
use psdacc_sfg::NodeId;

use crate::evaluator::AccuracyEvaluator;
use crate::wordlength::WordLengthPlan;

/// Finds the smallest uniform fractional word-length whose estimated output
/// noise power stays at or below `budget`.
///
/// Returns `None` if even `max_bits` cannot meet the budget.
///
/// # Panics
///
/// Panics if `min_bits > max_bits`.
pub fn minimum_uniform_wordlength(
    evaluator: &AccuracyEvaluator,
    budget: f64,
    rounding: RoundingMode,
    min_bits: i32,
    max_bits: i32,
) -> Option<i32> {
    minimum_uniform_wordlength_from(
        evaluator,
        budget,
        &WordLengthPlan::uniform(min_bits, rounding),
        min_bits,
        max_bits,
    )
}

/// [`minimum_uniform_wordlength`] searching over copies of `template` with
/// only `frac_bits` swept — so the template's rounding mode, input
/// quantization, and **exact-node exemptions** (graph scenarios with
/// `"role":"exact"` nodes) shape every candidate plan identically to the
/// estimate jobs of the same scenario.
///
/// # Panics
///
/// Panics if `min_bits > max_bits`.
pub fn minimum_uniform_wordlength_from(
    evaluator: &AccuracyEvaluator,
    budget: f64,
    template: &WordLengthPlan,
    min_bits: i32,
    max_bits: i32,
) -> Option<i32> {
    assert!(min_bits <= max_bits, "empty search range");
    let plan_at = |d: i32| {
        let mut plan = template.clone();
        plan.frac_bits = d;
        plan.overrides.clear();
        plan
    };
    let meets = |d: i32| evaluator.estimate_psd(&plan_at(d)).power <= budget;
    if !meets(max_bits) {
        return None;
    }
    let (mut lo, mut hi) = (min_bits, max_bits);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if meets(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// Result of a greedy refinement.
#[derive(Debug, Clone)]
pub struct RefinementResult {
    /// The refined plan.
    pub plan: WordLengthPlan,
    /// Estimated output noise power under the plan.
    pub noise_power: f64,
    /// Total fractional bits across quantized nodes (the cost proxy).
    pub total_bits: i64,
    /// Number of evaluator calls spent (each is one `tau_eval`).
    pub evaluations: usize,
}

/// Greedy per-node descent: starting from a uniform `start_bits` plan,
/// repeatedly removes one fractional bit from the node that keeps the
/// estimated noise power lowest, as long as the power stays at or below
/// `budget`.
///
/// This is exactly the loop the paper's scalability argument is about: one
/// cheap `tau_eval` per candidate move, with preprocessing paid once.
pub fn greedy_refinement(
    evaluator: &AccuracyEvaluator,
    budget: f64,
    rounding: RoundingMode,
    start_bits: i32,
    min_bits: i32,
) -> RefinementResult {
    greedy_refinement_from(
        evaluator,
        budget,
        &WordLengthPlan::uniform(start_bits, rounding),
        start_bits,
        min_bits,
    )
}

/// One committed move of the greedy descent, reported to the observer of
/// [`greedy_refinement_observed`] — the provenance record that lets a
/// trace reconstruct the whole refinement trajectory step by step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineStep {
    /// 0-based index of the committed move.
    pub step: usize,
    /// The node that lost a bit.
    pub node: NodeId,
    /// The node's fractional bits before the move.
    pub bits_before: i32,
    /// The node's fractional bits after the move (`bits_before - 1`).
    pub bits_after: i32,
    /// Estimated output noise power before the move.
    pub power_before: f64,
    /// Estimated output noise power after the move — the candidate
    /// evaluation that won this round (also the prediction the next
    /// round descends from).
    pub power_after: f64,
}

/// [`greedy_refinement`] descending from copies of `template` (its
/// rounding mode, input quantization, and exact-node exemptions apply to
/// every trial plan; only per-node `frac_bits` overrides move). Nodes the
/// template exempts are never quantized and never appear in the descent.
pub fn greedy_refinement_from(
    evaluator: &AccuracyEvaluator,
    budget: f64,
    template: &WordLengthPlan,
    start_bits: i32,
    min_bits: i32,
) -> RefinementResult {
    greedy_refinement_observed(evaluator, budget, template, start_bits, min_bits, &mut |_| {})
}

/// [`greedy_refinement_from`] with a per-step observer: `observe` is
/// called once per **committed** move, after the descent state updates.
/// Observation is strictly passive — the refined plan, power, and
/// evaluation count are byte-identical with or without an observer (the
/// engine's traced path relies on this to keep tracing behavior-neutral).
pub fn greedy_refinement_observed(
    evaluator: &AccuracyEvaluator,
    budget: f64,
    template: &WordLengthPlan,
    start_bits: i32,
    min_bits: i32,
    observe: &mut dyn FnMut(&RefineStep),
) -> RefinementResult {
    let sfg = evaluator.sfg().clone();
    let base = {
        let mut plan = template.clone();
        plan.frac_bits = start_bits;
        plan.overrides.clear();
        plan
    };
    let quantized = base.quantized_nodes(&sfg);
    let mut bits: HashMap<NodeId, i32> = quantized.iter().map(|&n| (n, start_bits)).collect();
    let mut evaluations = 0usize;
    let build = |bits: &HashMap<NodeId, i32>| {
        let mut plan = base.clone();
        for (&node, &d) in bits {
            plan = plan.with_override(node, d);
        }
        plan
    };
    let mut current_power = {
        evaluations += 1;
        evaluator.estimate_psd(&build(&bits)).power
    };
    let mut step = 0usize;
    loop {
        let mut best: Option<(NodeId, f64)> = None;
        for &node in &quantized {
            let d = bits[&node];
            if d <= min_bits {
                continue;
            }
            let mut trial = bits.clone();
            trial.insert(node, d - 1);
            evaluations += 1;
            let power = evaluator.estimate_psd(&build(&trial)).power;
            if power <= budget && best.is_none_or(|(_, p)| power < p) {
                best = Some((node, power));
            }
        }
        match best {
            Some((node, power)) => {
                let bits_before = bits[&node];
                *bits.get_mut(&node).expect("node tracked") -= 1;
                observe(&RefineStep {
                    step,
                    node,
                    bits_before,
                    bits_after: bits_before - 1,
                    power_before: current_power,
                    power_after: power,
                });
                step += 1;
                current_power = power;
            }
            None => break,
        }
    }
    let total_bits = bits.values().map(|&d| d as i64).sum();
    RefinementResult { plan: build(&bits), noise_power: current_power, total_bits, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdacc_dsp::Window;
    use psdacc_filters::{design_fir, BandSpec};
    use psdacc_sfg::{Block, Sfg};

    fn two_stage_system() -> Sfg {
        let lp = design_fir(BandSpec::Lowpass { cutoff: 0.2 }, 21, Window::Hamming).unwrap();
        let hp = design_fir(BandSpec::Highpass { cutoff: 0.3 }, 21, Window::Hamming).unwrap();
        let mut g = Sfg::new();
        let x = g.add_input();
        let a = g.add_block(Block::Fir(lp), &[x]).unwrap();
        let b = g.add_block(Block::Fir(hp), &[a]).unwrap();
        g.mark_output(b);
        g
    }

    #[test]
    fn uniform_search_meets_budget_minimally() {
        let g = two_stage_system();
        let eval = AccuracyEvaluator::new(&g, 256).unwrap();
        let budget = 1e-8;
        let d = minimum_uniform_wordlength(&eval, budget, RoundingMode::RoundNearest, 4, 32)
            .expect("32 bits suffice");
        let at = |d: i32| {
            eval.estimate_psd(&WordLengthPlan::uniform(d, RoundingMode::RoundNearest)).power
        };
        assert!(at(d) <= budget);
        assert!(at(d - 1) > budget, "d should be minimal");
    }

    #[test]
    fn uniform_search_reports_infeasible() {
        let g = two_stage_system();
        let eval = AccuracyEvaluator::new(&g, 256).unwrap();
        assert!(
            minimum_uniform_wordlength(&eval, 1e-30, RoundingMode::RoundNearest, 4, 20).is_none()
        );
    }

    #[test]
    fn greedy_saves_bits_over_uniform() {
        let g = two_stage_system();
        let eval = AccuracyEvaluator::new(&g, 256).unwrap();
        let rounding = RoundingMode::RoundNearest;
        // Budget set at the uniform-12-bit noise level: greedy should shave
        // bits from nodes whose noise the system attenuates.
        let budget = eval.estimate_psd(&WordLengthPlan::uniform(12, rounding)).power * 1.02;
        let result = greedy_refinement(&eval, budget, rounding, 12, 4);
        assert!(result.noise_power <= budget);
        let uniform_bits = 12 * result.plan.quantized_nodes(eval.sfg()).len() as i64;
        assert!(
            result.total_bits < uniform_bits,
            "greedy {} should beat uniform {}",
            result.total_bits,
            uniform_bits
        );
        assert!(result.evaluations > 3, "the loop actually ran");
    }

    #[test]
    fn template_exemptions_shape_both_refinement_loops() {
        let g = two_stage_system();
        let eval = AccuracyEvaluator::new(&g, 256).unwrap();
        let rounding = RoundingMode::RoundNearest;
        let second_fir = NodeId(2);
        let template = WordLengthPlan::uniform(0, rounding).with_exact_nodes([second_fir]);
        // Greedy: the exempt node is never part of the descent.
        let budget = eval
            .estimate_psd(&{
                let mut p = template.clone();
                p.frac_bits = 12;
                p
            })
            .power
            * 1.02;
        let result = greedy_refinement_from(&eval, budget, &template, 12, 4);
        assert!(result.noise_power <= budget);
        assert!(
            !result.plan.quantized_nodes(&g).contains(&second_fir),
            "exempt node stays unquantized through refinement"
        );
        // Min-uniform: the exempt system needs fewer bits than the full one
        // at the same budget (one noise source removed).
        let with = minimum_uniform_wordlength_from(&eval, 1e-8, &template, 2, 32).unwrap();
        let without = minimum_uniform_wordlength(&eval, 1e-8, rounding, 2, 32).unwrap();
        assert!(with <= without, "exemption cannot need more bits ({with} vs {without})");
    }

    #[test]
    fn observer_sees_every_committed_step_and_changes_nothing() {
        let g = two_stage_system();
        let eval = AccuracyEvaluator::new(&g, 256).unwrap();
        let rounding = RoundingMode::RoundNearest;
        let template = WordLengthPlan::uniform(12, rounding);
        let budget = eval.estimate_psd(&template).power * 1.05;
        let silent = greedy_refinement_from(&eval, budget, &template, 12, 4);
        let mut steps: Vec<RefineStep> = Vec::new();
        let observed =
            greedy_refinement_observed(&eval, budget, &template, 12, 4, &mut |s| steps.push(*s));
        // Observation is passive: byte-identical result.
        assert_eq!(observed.noise_power, silent.noise_power);
        assert_eq!(observed.total_bits, silent.total_bits);
        assert_eq!(observed.evaluations, silent.evaluations);
        // The trajectory replays to the refined plan: steps are dense,
        // bits drop by one, and powers chain.
        assert!(!steps.is_empty(), "budget slack admits at least one move");
        let mut bits: HashMap<NodeId, i32> =
            observed.plan.quantized_nodes(&g).iter().map(|&n| (n, 12)).collect();
        for (i, s) in steps.iter().enumerate() {
            assert_eq!(s.step, i, "dense step indices");
            assert_eq!(s.bits_after, s.bits_before - 1);
            assert_eq!(bits[&s.node], s.bits_before, "replay tracks the descent");
            bits.insert(s.node, s.bits_after);
            assert!(s.power_after <= budget);
            if i + 1 < steps.len() {
                assert_eq!(steps[i + 1].power_before, s.power_after, "powers chain");
            }
        }
        for (&node, &d) in &bits {
            assert_eq!(observed.plan.frac_bits_of(node), d, "replay reaches the final plan");
        }
        assert_eq!(steps.last().unwrap().power_after, observed.noise_power);
    }

    #[test]
    fn greedy_respects_budget_strictly() {
        let g = two_stage_system();
        let eval = AccuracyEvaluator::new(&g, 128).unwrap();
        let rounding = RoundingMode::Truncate;
        let budget = 1e-6;
        let result = greedy_refinement(&eval, budget, rounding, 16, 2);
        assert!(result.noise_power <= budget);
        // A one-bit-coarser move anywhere would break the budget (local
        // optimality of the greedy stop).
        for &node in &result.plan.quantized_nodes(eval.sfg()) {
            let d = result.plan.frac_bits_of(node);
            if d <= 2 {
                continue;
            }
            let worse = result.plan.clone().with_override(node, d - 1);
            assert!(
                eval.estimate_psd(&worse).power > budget,
                "node {node:?} could still lose a bit"
            );
        }
    }
}
