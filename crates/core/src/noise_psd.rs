//! The discrete noise-PSD representation (paper Eq. 9/10).
//!
//! A [`NoisePsd`] carries the zero-mean spectral content as `N_PSD` bin
//! masses (summing to the noise variance) plus the deterministic mean as a
//! separate scalar. The paper's Eq. 10 folds `mu^2` into the DC *bin*; we
//! keep the mean exact and separate — through an LTI path it scales by the
//! DC gain, which loses nothing — and fold it only where unavoidable
//! (rate changers, see `propagate`). With rounding quantizers (`mu = 0`)
//! the two conventions are identical.

use psdacc_fixed::NoiseMoments;

/// Discrete power spectral density of a noise signal.
///
/// `bins[k]` is the noise power (bin mass) in `F in [k/N, (k+1)/N)`, so
/// `sum(bins) == variance`; `mean` is the deterministic component.
///
/// # Examples
///
/// ```
/// use psdacc_core::NoisePsd;
/// use psdacc_fixed::{NoiseMoments, RoundingMode};
///
/// let m = NoiseMoments::continuous(RoundingMode::Truncate, 8);
/// let psd = NoisePsd::white(m, 64);
/// assert!((psd.power() - m.power()).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NoisePsd {
    bins: Vec<f64>,
    mean: f64,
}

impl NoisePsd {
    /// An all-zero PSD on `npsd` bins.
    pub fn zero(npsd: usize) -> Self {
        NoisePsd { bins: vec![0.0; npsd], mean: 0.0 }
    }

    /// A spectrally white source with the given moments (paper Eq. 10):
    /// every bin holds `variance / N_PSD`.
    ///
    /// # Panics
    ///
    /// Panics if `npsd == 0`.
    pub fn white(moments: NoiseMoments, npsd: usize) -> Self {
        assert!(npsd > 0, "PSD needs at least one bin");
        NoisePsd { bins: vec![moments.variance / npsd as f64; npsd], mean: moments.mean }
    }

    /// Builds a PSD from explicit bins and mean.
    pub fn from_parts(bins: Vec<f64>, mean: f64) -> Self {
        NoisePsd { bins, mean }
    }

    /// The spectral bins (zero-mean content; sums to the variance).
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// The deterministic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Number of bins.
    pub fn npsd(&self) -> usize {
        self.bins.len()
    }

    /// Noise variance (`sum(bins)`).
    pub fn variance(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// Total noise power `mean^2 + variance` (paper Eq. 9 as a sum).
    pub fn power(&self) -> f64 {
        self.mean * self.mean + self.variance()
    }

    /// First two moments.
    pub fn moments(&self) -> NoiseMoments {
        NoiseMoments::new(self.mean, self.variance())
    }

    /// The displayable spectrum with the mean folded into the DC bin — the
    /// exact layout of the paper's Eq. 10.
    pub fn display_bins(&self) -> Vec<f64> {
        let mut out = self.bins.clone();
        if let Some(dc) = out.first_mut() {
            *dc += self.mean * self.mean;
        }
        out
    }

    /// Sum of two PSDs of *uncorrelated* noises (paper Eq. 14).
    ///
    /// # Panics
    ///
    /// Panics if the bin counts differ.
    pub fn add(&self, other: &NoisePsd) -> NoisePsd {
        assert_eq!(self.npsd(), other.npsd(), "PSD grids must match");
        NoisePsd {
            bins: self.bins.iter().zip(&other.bins).map(|(a, b)| a + b).collect(),
            mean: self.mean + other.mean,
        }
    }

    /// In-place uncorrelated accumulation.
    ///
    /// # Panics
    ///
    /// Panics if the bin counts differ.
    pub fn add_assign(&mut self, other: &NoisePsd) {
        assert_eq!(self.npsd(), other.npsd(), "PSD grids must match");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.mean += other.mean;
    }

    /// Scales the whole PSD by a constant *gain* `g` (power scales by
    /// `g^2`, mean by `g`).
    pub fn scale(&self, g: f64) -> NoisePsd {
        NoisePsd { bins: self.bins.iter().map(|v| v * g * g).collect(), mean: self.mean * g }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdacc_fixed::RoundingMode;

    #[test]
    fn white_psd_is_flat_and_exact() {
        let m = NoiseMoments::new(-0.1, 1.2);
        let psd = NoisePsd::white(m, 16);
        for &b in psd.bins() {
            assert!((b - 1.2 / 16.0).abs() < 1e-15);
        }
        assert!((psd.variance() - 1.2).abs() < 1e-12);
        assert!((psd.power() - (0.01 + 1.2)).abs() < 1e-12);
        assert_eq!(psd.mean(), -0.1);
    }

    #[test]
    fn display_bins_fold_mean_into_dc() {
        let psd = NoisePsd::white(NoiseMoments::new(0.5, 0.0), 8);
        let d = psd.display_bins();
        assert!((d[0] - 0.25).abs() < 1e-15);
        assert!(d[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn addition_is_uncorrelated_sum() {
        let a = NoisePsd::white(NoiseMoments::new(0.1, 1.0), 8);
        let b = NoisePsd::white(NoiseMoments::new(-0.3, 2.0), 8);
        let s = a.add(&b);
        assert!((s.variance() - 3.0).abs() < 1e-12);
        assert!((s.mean() - -0.2).abs() < 1e-12);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c, s);
    }

    #[test]
    fn scaling() {
        let a = NoisePsd::white(NoiseMoments::new(0.5, 1.0), 4);
        let s = a.scale(-2.0);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.mean(), -1.0);
    }

    #[test]
    fn truncation_source_has_dc_component() {
        let m = NoiseMoments::continuous(RoundingMode::Truncate, 4);
        let psd = NoisePsd::white(m, 32);
        assert!(psd.mean() < 0.0);
        assert!(psd.power() > psd.variance());
    }

    #[test]
    #[should_panic(expected = "grids must match")]
    fn mismatched_grids_rejected() {
        let a = NoisePsd::zero(8);
        let b = NoisePsd::zero(16);
        let _ = a.add(&b);
    }
}
