//! PSD propagation rules (paper Eq. 11-14, plus the multirate extensions
//! needed by the DWT benchmark).

use psdacc_fft::Complex;

use crate::noise_psd::NoisePsd;

/// Propagates a noise PSD through an LTI block with sampled complex response
/// `resp` (paper Eq. 11): `S_out[k] = S_in[k] |H(F_k)|^2`, mean through the
/// DC gain.
///
/// # Panics
///
/// Panics if `resp.len() != psd.npsd()`.
pub fn through_response(psd: &NoisePsd, resp: &[Complex]) -> NoisePsd {
    assert_eq!(resp.len(), psd.npsd(), "response grid must match PSD grid");
    let bins = psd.bins().iter().zip(resp).map(|(s, h)| s * h.norm_sqr()).collect();
    NoisePsd::from_parts(bins, psd.mean() * resp[0].re)
}

/// Propagates through a block given `|H|^2` samples and the (signed) DC
/// gain.
///
/// # Panics
///
/// Panics if `mag2.len() != psd.npsd()`.
pub fn through_magnitude(psd: &NoisePsd, mag2: &[f64], dc_gain: f64) -> NoisePsd {
    assert_eq!(mag2.len(), psd.npsd(), "response grid must match PSD grid");
    let bins = psd.bins().iter().zip(mag2).map(|(s, m)| s * m).collect();
    NoisePsd::from_parts(bins, psd.mean() * dc_gain)
}

/// PSD after decimation by `m` (keep every `m`-th sample), on the *same*
/// `N_PSD` grid: the spectrum folds,
/// `S_y(F) = (1/m) sum_{i<m} S_x((F + i) / m)`.
///
/// Total power is preserved (decimation does not change `E[x^2]` of a
/// stationary noise); the mean also passes through unchanged. Fractional
/// source bins are resolved by periodic linear interpolation — an error on
/// the order of the grid resolution, which is precisely the `N_PSD`
/// trade-off the paper studies in Fig. 5.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn downsample_psd(psd: &NoisePsd, m: usize) -> NoisePsd {
    assert!(m > 0, "decimation factor must be positive");
    if m == 1 {
        return psd.clone();
    }
    let n = psd.npsd();
    let bins = (0..n)
        .map(|k| {
            (0..m).map(|i| interp_bin(psd.bins(), (k + i * n) as f64 / m as f64)).sum::<f64>()
                / m as f64
        })
        .collect();
    NoisePsd::from_parts(bins, psd.mean())
}

/// PSD after zero-stuffing by `l` (insert `l-1` zeros), on the same grid:
/// the spectrum compresses, `S_y(F) = (1/l) S_x(l F mod 1)`, and the total
/// power drops to `1/l` of the input (only one in `l` samples is nonzero).
///
/// The deterministic mean becomes a periodic impulse train: its DC line
/// (`mean/l`) stays in the `mean` slot and the `l-1` image lines at
/// `F = i/l` are folded into the corresponding bins so downstream
/// interpolation filters shape them correctly.
///
/// # Panics
///
/// Panics if `l == 0`.
pub fn upsample_psd(psd: &NoisePsd, l: usize) -> NoisePsd {
    assert!(l > 0, "expansion factor must be positive");
    if l == 1 {
        return psd.clone();
    }
    let n = psd.npsd();
    let mut bins: Vec<f64> =
        (0..n).map(|k| interp_bin(psd.bins(), ((k * l) % n) as f64) / l as f64).collect();
    let mean = psd.mean() / l as f64;
    // Image lines of the mean train at F = i/l, i = 1..l-1.
    let line_mass = mean * mean;
    for i in 1..l {
        let pos = (i * n) as f64 / l as f64;
        deposit_bin(&mut bins, pos, line_mass);
    }
    NoisePsd::from_parts(bins, mean)
}

/// Periodic linear interpolation of a bin-mass array at fractional index.
fn interp_bin(bins: &[f64], idx: f64) -> f64 {
    let n = bins.len();
    let lo = idx.floor() as usize % n;
    let hi = (lo + 1) % n;
    let frac = idx - idx.floor();
    bins[lo] * (1.0 - frac) + bins[hi] * frac
}

/// Deposits `mass` at a fractional bin position, splitting linearly.
fn deposit_bin(bins: &mut [f64], pos: f64, mass: f64) {
    let n = bins.len();
    let lo = pos.floor() as usize % n;
    let hi = (lo + 1) % n;
    let frac = pos - pos.floor();
    bins[lo] += mass * (1.0 - frac);
    bins[hi] += mass * frac;
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdacc_dsp::{downsample, upsample, welch, SignalGenerator, Window};
    use psdacc_fixed::NoiseMoments;

    #[test]
    fn lti_propagation_scales_bins() {
        let psd = NoisePsd::white(NoiseMoments::new(0.2, 1.0), 4);
        let resp = vec![
            Complex::from_re(2.0),
            Complex::new(0.0, 1.0),
            Complex::ZERO,
            Complex::new(0.0, -1.0),
        ];
        let out = through_response(&psd, &resp);
        assert_eq!(out.bins(), &[1.0, 0.25, 0.0, 0.25]);
        assert!((out.mean() - 0.4).abs() < 1e-15);
    }

    #[test]
    fn white_noise_survives_downsampling_white() {
        let psd = NoisePsd::white(NoiseMoments::new(0.1, 1.0), 64);
        for m in [2usize, 3, 4] {
            let out = downsample_psd(&psd, m);
            assert!((out.variance() - 1.0).abs() < 1e-12, "m={m}");
            assert!((out.mean() - 0.1).abs() < 1e-15);
            for &b in out.bins() {
                assert!((b - 1.0 / 64.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn upsample_divides_power_by_l() {
        let psd = NoisePsd::white(NoiseMoments::new(0.0, 1.2), 64);
        for l in [2usize, 4] {
            let out = upsample_psd(&psd, l);
            assert!((out.power() - 1.2 / l as f64).abs() < 1e-12, "l={l}");
        }
    }

    #[test]
    fn upsample_mean_images() {
        // Pure DC input: after zero-stuffing by 2, power mu^2/2 splits into
        // a DC line (mu/2)^2 and a Nyquist line (mu/2)^2.
        let psd = NoisePsd::white(NoiseMoments::new(1.0, 0.0), 8);
        let out = upsample_psd(&psd, 2);
        assert!((out.mean() - 0.5).abs() < 1e-15);
        assert!((out.bins()[4] - 0.25).abs() < 1e-12); // image at F = 1/2
        assert!((out.power() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn down_then_up_by_same_factor() {
        // Down-up of white noise: power 1 -> 1 -> 1/2 for l = m = 2.
        let psd = NoisePsd::white(NoiseMoments::new(0.0, 1.0), 32);
        let out = upsample_psd(&downsample_psd(&psd, 2), 2);
        assert!((out.power() - 0.5).abs() < 1e-12);
    }

    /// Measured check: a *shaped* (colored) noise downsampled in the time
    /// domain has the PSD predicted by the folding rule.
    #[test]
    fn downsample_rule_matches_measurement() {
        let mut gen = SignalGenerator::new(77);
        let x = gen.ar1(1 << 18, 0.8, 1.0);
        let nfft = 64;
        let sx = welch(&x, nfft, 0.5, Window::Hann);
        let y = downsample(&x, 2, 0);
        let sy_measured = welch(&y, nfft, 0.5, Window::Hann);
        let sy_predicted = downsample_psd(&NoisePsd::from_parts(sx, 0.0), 2);
        for k in 0..nfft {
            let p = sy_predicted.bins()[k];
            let m = sy_measured[k];
            assert!(
                (p - m).abs() < 0.15 * (p.abs().max(m.abs()) + 1e-6),
                "bin {k}: predicted {p}, measured {m}"
            );
        }
    }

    /// Measured check for the zero-stuffing rule on colored noise.
    #[test]
    fn upsample_rule_matches_measurement() {
        let mut gen = SignalGenerator::new(78);
        let x = gen.ar1(1 << 17, 0.7, 1.0);
        let nfft = 64;
        let sx = welch(&x, nfft, 0.5, Window::Hann);
        let y = upsample(&x, 2);
        let sy_measured = welch(&y, nfft, 0.5, Window::Hann);
        let sy_predicted = upsample_psd(&NoisePsd::from_parts(sx, 0.0), 2);
        for k in 0..nfft {
            let p = sy_predicted.bins()[k];
            let m = sy_measured[k];
            assert!(
                (p - m).abs() < 0.15 * (p.abs().max(m.abs()) + 1e-6),
                "bin {k}: predicted {p}, measured {m}"
            );
        }
    }

    #[test]
    fn identity_factors() {
        let psd = NoisePsd::white(NoiseMoments::new(0.3, 0.7), 16);
        assert_eq!(downsample_psd(&psd, 1), psd);
        assert_eq!(upsample_psd(&psd, 1), psd);
    }
}
