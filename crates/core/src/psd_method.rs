//! The proposed PSD-based accuracy evaluation (paper Section III).
//!
//! For a single-rate LTI graph the engine:
//!
//! 1. samples every block transfer function on the `N_PSD` grid and solves
//!    the graph per frequency ([`psdacc_sfg::node_responses`]) — the
//!    preprocessing stage `tau_pp`, independent of word-lengths;
//! 2. models each quantization source as a white PSD with the PQN moments
//!    (Eq. 10) and accumulates
//!    `S_out[k] += |G_i(F_k)|^2 * sigma_i^2 / N_PSD` plus the mean path
//!    through the DC gains — the evaluation stage `tau_eval`, O(Ne * N_PSD)
//!    per word-length configuration.
//!
//! Because `G_i` is the *complex* source-to-output response of the resolved
//! graph, reconvergent paths of the same source interfere with correct
//! phase: Eq. 12's cross-spectra are accounted for exactly inside the LTI
//! region, which is precisely what the PSD-agnostic baseline cannot do.

use psdacc_fft::Complex;
use psdacc_sfg::{node_responses, MultirateResponses, NodeId, NodeResponses, Sfg, SfgError};

use crate::noise_psd::NoisePsd;
use crate::wordlength::NoiseSource;

/// Result of a PSD-method evaluation.
#[derive(Debug, Clone)]
pub struct PsdEstimate {
    /// Estimated PSD of the output error.
    pub psd: NoisePsd,
    /// Power contribution of each source (diagnostic / refinement aid).
    pub per_source: Vec<(NodeId, f64)>,
}

impl PsdEstimate {
    /// Total estimated error power.
    pub fn power(&self) -> f64 {
        self.psd.power()
    }
}

/// One-shot evaluation: solve the graph, then accumulate the sources.
///
/// # Errors
///
/// Propagates [`SfgError`] from the per-frequency solve (unknown output,
/// delay-free cycles).
pub fn evaluate_psd_method(
    sfg: &Sfg,
    output: NodeId,
    sources: &[NoiseSource],
    npsd: usize,
) -> Result<PsdEstimate, SfgError> {
    let responses = node_responses(sfg, output, npsd)?;
    Ok(evaluate_with_responses(&responses, sources))
}

/// Evaluation stage only (`tau_eval`), reusing cached preprocessing. This is
/// what gets re-run for every word-length configuration during refinement.
pub fn evaluate_with_responses(responses: &NodeResponses, sources: &[NoiseSource]) -> PsdEstimate {
    let npsd = responses.npsd();
    let mut total = NoisePsd::zero(npsd);
    let mut per_source = Vec::with_capacity(sources.len());
    for src in sources {
        let contribution = contribution_single_rate(responses, src);
        per_source.push((src.node, contribution.power()));
        total.add_assign(&contribution);
    }
    PsdEstimate { psd: total, per_source }
}

/// One source's output-referred PSD on the single-rate path — the term
/// `evaluate_with_responses` accumulates, shared with the noise-budget
/// attribution so the two views are the same computation by construction.
pub(crate) fn contribution_single_rate(responses: &NodeResponses, src: &NoiseSource) -> NoisePsd {
    let npsd = responses.npsd();
    let g = responses.of(src.node);
    match &src.internal_feedback {
        None => source_contribution(src, g, npsd),
        Some(_) => {
            let shape = src.shaping(npsd);
            let combined: Vec<Complex> = g.iter().zip(&shape).map(|(a, b)| *a * *b).collect();
            source_contribution(src, &combined, npsd)
        }
    }
}

fn source_contribution(src: &NoiseSource, g: &[Complex], npsd: usize) -> NoisePsd {
    let white = NoisePsd::white(src.moments, npsd);
    crate::propagate::through_response(&white, g)
}

/// One measured source's output-referred PSD on the single-rate path: the
/// estimated spectrum rebinned onto the evaluation grid (power-preserving;
/// bit-exact when the grids match) and shaped by the node's
/// source-to-output response, with the sample mean riding the DC path.
/// Unlike quantization sources the spectrum is colored and word-length
/// independent — a noise floor every plan shares. Multirate graphs reject
/// measured sources at preprocessing, so no multirate twin exists.
pub(crate) fn measured_contribution_single_rate(
    responses: &NodeResponses,
    node: NodeId,
    src: &psdacc_sfg::MeasuredSource,
) -> NoisePsd {
    let npsd = responses.npsd();
    let psd = NoisePsd::from_parts(src.bins_at(npsd), src.mean);
    crate::propagate::through_response(&psd, responses.of(node))
}

/// Evaluation stage (`tau_eval`) over **multirate** preprocessing: each
/// source's white PSD is already folded/imaged into an output-referred
/// kernel, so evaluating a word-length plan is one scale-and-accumulate
/// per source — `sigma^2` times the variance kernel plus `mu^2` times the
/// mean-image kernel, with the mean riding the scalar DC path.
///
/// Multirate graphs carry no IIR blocks (rejected during preprocessing),
/// so no source needs internal `1/A(z)` shaping here.
pub fn evaluate_with_multirate(
    responses: &MultirateResponses,
    sources: &[NoiseSource],
) -> PsdEstimate {
    let n = responses.npsd_out();
    let mut total = NoisePsd::zero(n);
    let mut per_source = Vec::with_capacity(sources.len());
    for src in sources {
        let contribution = contribution_multirate(responses, src);
        per_source.push((src.node, contribution.power()));
        total.add_assign(&contribution);
    }
    PsdEstimate { psd: total, per_source }
}

/// One source's output-referred PSD on the multirate path (see
/// [`contribution_single_rate`]): `sigma^2` times the variance kernel
/// plus `mu^2` times the mean-image kernel, mean riding the scalar DC.
pub(crate) fn contribution_multirate(
    responses: &MultirateResponses,
    src: &NoiseSource,
) -> NoisePsd {
    debug_assert!(
        src.internal_feedback.is_none(),
        "multirate graphs reject IIR blocks at preprocessing"
    );
    let kernel = responses.kernel(src.node);
    let sigma2 = src.moments.variance;
    let mu = src.moments.mean;
    let bins: Vec<f64> = kernel
        .variance
        .iter()
        .zip(&kernel.mean_sq)
        .map(|(&v, &m)| sigma2 * v + mu * mu * m)
        .collect();
    NoisePsd::from_parts(bins, mu * kernel.dc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wordlength::WordLengthPlan;
    use psdacc_filters::{Fir, Iir, LtiSystem};
    use psdacc_fixed::{NoiseMoments, RoundingMode};
    use psdacc_sfg::Block;

    /// Single FIR: output noise = input-source noise shaped by |H|^2 plus
    /// the filter's own source, white.
    #[test]
    fn single_fir_analytic() {
        let fir = Fir::new(vec![0.5, 0.5]);
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Fir(fir.clone()), &[x]).unwrap();
        g.mark_output(f);
        let d = 8;
        let plan = WordLengthPlan::uniform(d, RoundingMode::RoundNearest);
        let sources = plan.noise_sources(&g);
        let est = evaluate_psd_method(&g, f, &sources, 256).unwrap();
        let q2_12 = NoiseMoments::continuous(RoundingMode::RoundNearest, d).variance;
        // Analytic: sigma^2 * energy(h) + sigma^2 = sigma^2 (0.5 + 1).
        let expect = q2_12 * (fir.energy() + 1.0);
        assert!((est.power() - expect).abs() < 1e-3 * expect, "{} vs {}", est.power(), expect);
    }

    /// Truncation means ride the DC gains: check against hand computation.
    #[test]
    fn truncation_mean_through_dc_gain() {
        let fir = Fir::new(vec![0.75, 0.75]); // DC gain 1.5
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Fir(fir), &[x]).unwrap();
        g.mark_output(f);
        let d = 6;
        let plan = WordLengthPlan::uniform(d, RoundingMode::Truncate);
        let est = evaluate_psd_method(&g, f, &plan.noise_sources(&g), 128).unwrap();
        let mu = NoiseMoments::continuous(RoundingMode::Truncate, d).mean;
        // Input source mean through DC 1.5 plus the filter's own mean.
        let expect_mean = mu * 1.5 + mu;
        assert!((est.psd.mean() - expect_mean).abs() < 1e-12);
    }

    /// IIR source is shaped by 1/A: power = sigma^2 * energy(1/A).
    #[test]
    fn iir_internal_shaping() {
        let iir = Iir::new(vec![1.0], vec![1.0, -0.9]).unwrap();
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Iir(iir), &[x]).unwrap();
        g.mark_output(f);
        let d = 10;
        let mut plan = WordLengthPlan::uniform(d, RoundingMode::RoundNearest);
        plan.quantize_inputs = false; // isolate the IIR source
        let sources = plan.noise_sources(&g);
        assert_eq!(sources.len(), 1);
        let est = evaluate_psd_method(&g, f, &sources, 4096).unwrap();
        let sigma2 = NoiseMoments::continuous(RoundingMode::RoundNearest, d).variance;
        // energy of 1/(1-0.9 z^-1) = 1/(1-0.81).
        let expect = sigma2 / (1.0 - 0.81);
        // N_PSD sampling slightly misestimates the pole peak; a few percent.
        assert!((est.power() - expect).abs() < 0.02 * expect, "{} vs {}", est.power(), expect);
    }

    /// Reconvergent same-source paths: PSD method captures the interference
    /// exactly (complex sum), unlike a power sum.
    #[test]
    fn reconvergence_interference() {
        // Source at x; paths: identity and delay(1), summed. |1 + e^-jw|^2
        // integrates to 2 over the band, *not* the power-sum 2... but with
        // correlation the DC bin doubles and Nyquist vanishes.
        let mut g = Sfg::new();
        let x = g.add_input();
        let d1 = g.add_block(Block::Delay(1), &[x]).unwrap();
        let add = g.add_block(Block::Add, &[x, d1]).unwrap();
        g.mark_output(add);
        let src =
            NoiseSource { node: x, moments: NoiseMoments::new(0.0, 1.0), internal_feedback: None };
        let est = evaluate_psd_method(&g, add, &[src], 64).unwrap();
        // Total variance: integral of |1+e^-jw|^2 = 2 (same as power sum
        // here), but the *spectrum* differs: DC bin holds 4/64, Nyquist 0.
        assert!((est.power() - 2.0).abs() < 1e-9);
        assert!((est.psd.bins()[0] - 4.0 / 64.0).abs() < 1e-12);
        assert!(est.psd.bins()[32].abs() < 1e-12);
    }

    #[test]
    fn per_source_breakdown_sums_to_total() {
        let mut g = Sfg::new();
        let x = g.add_input();
        let a = g.add_block(Block::Gain(0.3), &[x]).unwrap();
        let f = g.add_block(Block::Fir(Fir::new(vec![0.2, 0.2, 0.2])), &[a]).unwrap();
        g.mark_output(f);
        let plan = WordLengthPlan::uniform(8, RoundingMode::RoundNearest);
        let sources = plan.noise_sources(&g);
        let est = evaluate_psd_method(&g, f, &sources, 128).unwrap();
        let sum: f64 = est.per_source.iter().map(|(_, p)| p).sum();
        assert!((sum - est.power()).abs() < 1e-15 + 1e-9 * est.power());
    }
}
