//! Estimate and comparison reports.

use std::time::Duration;

use crate::metrics;
use crate::noise_psd::NoisePsd;

/// Which evaluation method produced an estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// The paper's proposed PSD-propagation method.
    PsdMethod,
    /// The hierarchical moments-only baseline.
    PsdAgnostic,
    /// The classical flat (path-enumeration) method.
    Flat,
    /// Monte-Carlo fixed-point simulation (the reference).
    Simulation,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Method::PsdMethod => "psd",
            Method::PsdAgnostic => "agnostic",
            Method::Flat => "flat",
            Method::Simulation => "simulation",
        };
        f.write_str(s)
    }
}

/// One method's estimate of the output error.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// The producing method.
    pub method: Method,
    /// Estimated (or measured) total error power.
    pub power: f64,
    /// Estimated (or measured) error mean.
    pub mean: f64,
    /// Estimated (or measured) error variance.
    pub variance: f64,
    /// The error PSD, when the method produces one.
    pub psd: Option<NoisePsd>,
    /// Wall-clock time of the evaluation stage.
    pub elapsed: Duration,
}

/// A side-by-side accuracy comparison against simulation.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The simulation reference.
    pub simulated: Estimate,
    /// The analytical estimates being judged.
    pub estimates: Vec<Estimate>,
}

impl Comparison {
    /// `Ed` of one method (paper Eq. 15 orientation; see
    /// [`crate::metrics::ed`]).
    pub fn ed_of(&self, method: Method) -> Option<f64> {
        self.estimates
            .iter()
            .find(|e| e.method == method)
            .map(|e| metrics::ed(self.simulated.power, e.power))
    }

    /// Speed-up of a method's evaluation stage relative to simulation.
    pub fn speedup_of(&self, method: Method) -> Option<f64> {
        self.estimates
            .iter()
            .find(|e| e.method == method)
            .map(|e| self.simulated.elapsed.as_secs_f64() / e.elapsed.as_secs_f64().max(1e-12))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(method: Method, power: f64, micros: u64) -> Estimate {
        Estimate {
            method,
            power,
            mean: 0.0,
            variance: power,
            psd: None,
            elapsed: Duration::from_micros(micros),
        }
    }

    #[test]
    fn ed_and_speedup() {
        let c = Comparison {
            simulated: est(Method::Simulation, 2.0, 1_000_000),
            estimates: vec![est(Method::PsdMethod, 1.9, 10), est(Method::PsdAgnostic, 8.0, 10)],
        };
        let ed_psd = c.ed_of(Method::PsdMethod).unwrap();
        assert!((ed_psd - (1.9 - 2.0) / 2.0).abs() < 1e-12);
        let ed_ag = c.ed_of(Method::PsdAgnostic).unwrap();
        assert!(ed_ag > 2.9); // 300% overestimate
        assert!(c.speedup_of(Method::PsdMethod).unwrap() > 1e4);
        assert!(c.ed_of(Method::Flat).is_none());
    }

    #[test]
    fn method_display() {
        assert_eq!(Method::PsdMethod.to_string(), "psd");
        assert_eq!(Method::Simulation.to_string(), "simulation");
    }
}
