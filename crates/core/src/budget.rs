//! Per-node noise-budget attribution: explain where the reported power
//! comes from.
//!
//! `tau_eval` already computes the output noise power as a sum of
//! per-source terms (paper Eq. 12/14: each source's white PSD shaped by
//! its source-to-output kernel, `sigma^2 * A_i` for the spectral part
//! plus the mean riding the DC path) — the total usually reported throws
//! that decomposition away. A [`NoiseBudget`] keeps it: one row per
//! noise source (role `auto`), one per measured source's estimated
//! spectrum (role `measured`), plus one zero row per exact-exempted node
//! (role `exact`), with the defining **ledger invariant** that the row
//! contributions, folded left-to-right in row order with plain `f64`
//! addition, reproduce the evaluate-path power *bit-exactly*:
//!
//! ```text
//! fold(0.0, rows, |acc, r| acc + r.contribution) == estimate_psd(plan).power
//! ```
//!
//! Exact attribution is subtle in floating point: per-source powers
//! `mu_i^2 + sum(bins_i)` do **not** sum to the total (the mean square
//! `(sum mu_i)^2` has cross terms, and fold orders differ). The ledger
//! instead splits each row into its variance mass `sum(bins_i)` and the
//! bilinear mean term `mu_i * M` (with `M` the total mean, so the mean
//! terms sum to `M^2` in real arithmetic), then absorbs the remaining
//! floating-point residue into the **last** auto row by nudging it a few
//! ULPs until the fold lands exactly on the total (falling back to a
//! one-ULP shift of the penultimate row when round-to-even midpoint
//! alignment leaves the total without a preimage). The residue is ~1 ULP
//! of the power — far below anything a top-contributor ranking could
//! notice — and in exchange the budget is auditable: a reader summing the
//! column reproduces the reported number to the last bit.

use psdacc_sfg::{NodeId, Sfg};

use crate::noise_psd::NoisePsd;
use crate::wordlength::{NoiseSource, WordLengthPlan};

/// Why a node does (or does not) appear in the noise budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetRole {
    /// The node carries a quantizer under the plan and injects noise.
    Auto,
    /// The node is a measured source: it injects its estimated spectrum —
    /// a word-length-independent floor — rather than quantization noise.
    Measured,
    /// The node is exempted (`role: "exact"` in a `GraphSpec`): it would
    /// carry a quantizer but was declared exact, so it contributes
    /// exactly zero.
    Exact,
}

impl BudgetRole {
    /// Canonical lowercase name (`auto` / `measured` / `exact`) for
    /// reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            BudgetRole::Auto => "auto",
            BudgetRole::Measured => "measured",
            BudgetRole::Exact => "exact",
        }
    }
}

/// One node's line in the noise budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetRow {
    /// The attributed node.
    pub node: NodeId,
    /// Block kind of the node (`fir`, `iir`, `gain`, `input`, ...).
    pub block: &'static str,
    /// Whether the node injects noise or is exact-exempted.
    pub role: BudgetRole,
    /// Fractional bits of the node's quantizer (`None` for measured and
    /// exact rows — neither carries a quantizer).
    pub frac_bits: Option<i32>,
    /// Output-referred spectral mass of this source: `sum_k bins_i[k]`
    /// (`sigma_i^2 * A_i`; on the multirate path the kernel already folds
    /// `mu_i^2 * B_i` alias images into the bins as well).
    pub variance_term: f64,
    /// Bilinear mean attribution `mu_i * M` (`mu_i` the source's
    /// output-referred mean, `M` the total output mean) — the terms sum
    /// to `M^2`, attributing the squared mean across the sources that
    /// built it. Negative when this source's mean opposes the total.
    pub mean_term: f64,
    /// The ledger entry: `variance_term + mean_term`, with the final body
    /// row (auto or measured) additionally absorbing the floating-point
    /// fold residue so the column sums bit-exactly to
    /// [`NoiseBudget::power`].
    pub contribution: f64,
    /// `contribution / power` (`0.0` when the power is zero).
    pub share: f64,
}

/// Per-node attribution of one evaluate-path power number.
///
/// Produced by [`crate::AccuracyEvaluator::evaluate_budget`]; `power`,
/// `mean`, and `variance` are bit-identical to the same plan's
/// `estimate_psd` result, and the rows satisfy the ledger invariant
/// documented at the [module level](self).
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseBudget {
    /// Total output noise power — bit-identical to `estimate_psd`.
    pub power: f64,
    /// Total output noise mean — bit-identical to `estimate_psd`.
    pub mean: f64,
    /// Total output noise variance — bit-identical to `estimate_psd`.
    pub variance: f64,
    /// Attribution rows: one per noise source in evaluation order, then
    /// one per measured source in node order (the same fold order
    /// `estimate_psd` uses), followed by one zero row per exact-exempted
    /// node.
    pub rows: Vec<BudgetRow>,
}

impl NoiseBudget {
    /// Row indices sorted by descending contribution (ties by node id) —
    /// the top-contributor order reports render.
    pub fn ranked(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.rows.len()).collect();
        order.sort_by(|&a, &b| {
            self.rows[b]
                .contribution
                .partial_cmp(&self.rows[a].contribution)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(self.rows[a].node.0.cmp(&self.rows[b].node.0))
        });
        order
    }

    /// The left-to-right fold of the contribution column — equals
    /// [`NoiseBudget::power`] bit-exactly (the ledger invariant).
    pub fn ledger_sum(&self) -> f64 {
        self.rows.iter().fold(0.0, |acc, r| acc + r.contribution)
    }
}

/// Assembles the budget from the per-source contributions, accumulating
/// the total in the exact `add_assign` sequence `evaluate_with_responses`
/// / `evaluate_with_multirate` use — which is what makes `power` (and
/// `mean`, `variance`) bit-identical to the evaluate path.
pub(crate) fn assemble(
    sfg: &Sfg,
    plan: &WordLengthPlan,
    sources: &[NoiseSource],
    contributions: &[NoisePsd],
    measured: &[(NodeId, NoisePsd)],
) -> NoiseBudget {
    debug_assert_eq!(sources.len(), contributions.len());
    let all = || contributions.iter().chain(measured.iter().map(|(_, c)| c));
    let mut total = match all().next() {
        Some(c) => NoisePsd::zero(c.npsd()),
        None => NoisePsd::zero(1),
    };
    for c in all() {
        total.add_assign(c);
    }
    let power = total.power();
    let mean = total.mean();
    let variance = total.variance();

    let mut rows: Vec<BudgetRow> = sources
        .iter()
        .zip(contributions)
        .map(|(src, c)| {
            let variance_term = c.variance();
            let mean_term = c.mean() * mean;
            BudgetRow {
                node: src.node,
                block: sfg.node(src.node).block.kind(),
                role: BudgetRole::Auto,
                frac_bits: Some(plan.frac_bits_of(src.node)),
                variance_term,
                mean_term,
                contribution: variance_term + mean_term,
                share: 0.0,
            }
        })
        .collect();
    // Measured-source rows join the ledger body after the quantization
    // sources — the same position their contributions occupy in the
    // evaluate-path fold above.
    for (node, c) in measured {
        let variance_term = c.variance();
        let mean_term = c.mean() * mean;
        rows.push(BudgetRow {
            node: *node,
            block: sfg.node(*node).block.kind(),
            role: BudgetRole::Measured,
            frac_bits: None,
            variance_term,
            mean_term,
            contribution: variance_term + mean_term,
            share: 0.0,
        });
    }

    // Absorb the floating-point fold residue into the last body row: the
    // ideal contributions sum to the power in real arithmetic, so the
    // correction is ~1 ULP of the total. A prefix can align every exact
    // sum `prefix + r` on a round-to-even midpoint, making an
    // odd-mantissa power unreachable from the last row alone — then the
    // penultimate row is shifted by single ULPs (still ~1 ULP of its own
    // value) until the power has a preimage again.
    if let Some(last) = rows.len().checked_sub(1) {
        for _ in 0..64 {
            let prefix = rows[..last].iter().fold(0.0, |acc, r| acc + r.contribution);
            if let Some(r) = exact_residue(prefix, power) {
                rows[last].contribution = r;
                break;
            }
            debug_assert!(last > 0, "a 1-row ledger always has a preimage");
            let tweak = &mut rows[last - 1].contribution;
            *tweak = next_toward(*tweak, prefix < power);
        }
        let fold = rows.iter().fold(0.0, |acc, r| acc + r.contribution);
        debug_assert!(
            fold.to_bits() == power.to_bits(),
            "ledger fold failed: {fold:e} vs {power:e}"
        );
    }
    for row in &mut rows {
        row.share = if power == 0.0 { 0.0 } else { row.contribution / power };
    }
    // Exact-role rows: structurally zero, appended after the ledger body
    // (adding +0.0 never perturbs the fold — the bins are nonnegative, so
    // no partial sum is ever -0.0).
    for node in plan.exempted_nodes(sfg) {
        rows.push(BudgetRow {
            node,
            block: sfg.node(node).block.kind(),
            role: BudgetRole::Exact,
            frac_bits: None,
            variance_term: 0.0,
            mean_term: 0.0,
            contribution: 0.0,
            share: 0.0,
        });
    }
    NoiseBudget { power, mean, variance, rows }
}

/// The value `r` with `prefix + r == target` exactly, or `None` when no
/// representable preimage exists: starts from the rounded difference and
/// nudges by ULPs. The walk either lands within a step or two, or
/// oscillates between the two sums straddling an unreachable target
/// (round-to-even skips it) — detected as an immediate 2-cycle.
fn exact_residue(prefix: f64, target: f64) -> Option<f64> {
    let mut r = target - prefix;
    let mut prev = f64::NAN;
    for _ in 0..128 {
        let got = prefix + r;
        if got == target {
            return Some(r);
        }
        let next = next_toward(r, got < target);
        if next.to_bits() == prev.to_bits() {
            return None;
        }
        prev = r;
        r = next;
    }
    None
}

/// The next representable `f64` after `x` toward `+inf` (`up`) or `-inf`.
fn next_toward(x: f64, up: bool) -> f64 {
    if x == 0.0 {
        return if up { f64::from_bits(1) } else { -f64::from_bits(1) };
    }
    let bits = x.to_bits();
    f64::from_bits(if (x > 0.0) == up { bits + 1 } else { bits - 1 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::AccuracyEvaluator;
    use psdacc_filters::{Fir, Iir};
    use psdacc_fixed::RoundingMode;
    use psdacc_sfg::Block;

    fn mixed_system() -> Sfg {
        let mut g = Sfg::new();
        let x = g.add_input();
        let a = g.add_block(Block::Gain(0.3), &[x]).unwrap();
        let f = g.add_block(Block::Fir(Fir::new(vec![0.4, -0.2, 0.1])), &[a]).unwrap();
        let i =
            g.add_block(Block::Iir(Iir::new(vec![1.0], vec![1.0, -0.6]).unwrap()), &[f]).unwrap();
        g.mark_output(i);
        g
    }

    fn multirate_system() -> Sfg {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let mut g = Sfg::new();
        let x = g.add_input();
        let lp = g.add_block(Block::Fir(Fir::new(vec![s, s])), &[x]).unwrap();
        let d = g.add_block(Block::Downsample(2), &[lp]).unwrap();
        let u = g.add_block(Block::Upsample(2), &[d]).unwrap();
        let r = g.add_block(Block::Fir(Fir::new(vec![s, s])), &[u]).unwrap();
        g.mark_output(r);
        g
    }

    #[test]
    fn ledger_folds_bit_exactly_to_evaluate_power() {
        for (g, npsd) in [(mixed_system(), 256), (multirate_system(), 64)] {
            let eval = AccuracyEvaluator::new(&g, npsd).unwrap();
            for (bits, rounding) in [(6, RoundingMode::Truncate), (12, RoundingMode::RoundNearest)]
            {
                let plan = WordLengthPlan::uniform(bits, rounding);
                let est = eval.estimate_psd(&plan);
                let budget = eval.evaluate_budget(&plan);
                assert_eq!(budget.power, est.power, "total power is the evaluate-path value");
                assert_eq!(budget.mean, est.mean);
                assert_eq!(budget.variance, est.variance);
                assert_eq!(budget.ledger_sum(), est.power, "ledger invariant");
            }
        }
    }

    #[test]
    fn rows_cover_sources_with_roles_and_shares() {
        let g = mixed_system();
        let eval = AccuracyEvaluator::new(&g, 128).unwrap();
        let plan = WordLengthPlan::uniform(10, RoundingMode::Truncate);
        let budget = eval.evaluate_budget(&plan);
        let sources = plan.noise_sources(&g);
        assert_eq!(budget.rows.len(), sources.len());
        for (row, src) in budget.rows.iter().zip(&sources) {
            assert_eq!(row.node, src.node, "rows follow evaluation order");
            assert_eq!(row.role, BudgetRole::Auto);
            assert_eq!(row.frac_bits, Some(10));
        }
        let share_sum: f64 = budget.rows.iter().map(|r| r.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-12, "shares sum to 1, got {share_sum}");
        // The ranking is a permutation ordered by contribution.
        let ranked = budget.ranked();
        assert_eq!(ranked.len(), budget.rows.len());
        for pair in ranked.windows(2) {
            assert!(
                budget.rows[pair[0]].contribution >= budget.rows[pair[1]].contribution,
                "descending"
            );
        }
    }

    #[test]
    fn exact_nodes_contribute_exactly_zero() {
        let g = mixed_system();
        let eval = AccuracyEvaluator::new(&g, 128).unwrap();
        let fir = NodeId(2);
        let plan = WordLengthPlan::uniform(10, RoundingMode::Truncate).with_exact_nodes([fir]);
        let budget = eval.evaluate_budget(&plan);
        let exact: Vec<&BudgetRow> =
            budget.rows.iter().filter(|r| r.role == BudgetRole::Exact).collect();
        assert_eq!(exact.len(), 1);
        assert_eq!(exact[0].node, fir);
        assert_eq!(exact[0].contribution, 0.0);
        assert_eq!(exact[0].frac_bits, None);
        assert_eq!(budget.ledger_sum(), budget.power, "zero rows keep the ledger exact");
        assert_eq!(budget.power, eval.estimate_psd(&plan).power);
    }

    #[test]
    fn empty_plan_budget_is_exactly_zero() {
        let g = mixed_system();
        let eval = AccuracyEvaluator::new(&g, 64).unwrap();
        // Exempt everything: no sources remain.
        let plan = WordLengthPlan::uniform(8, RoundingMode::Truncate)
            .with_exact_nodes((0..g.len()).map(NodeId));
        let budget = eval.evaluate_budget(&plan);
        assert_eq!(budget.power, 0.0);
        assert_eq!(budget.power, eval.estimate_psd(&plan).power);
        assert!(budget.rows.iter().all(|r| r.role == BudgetRole::Exact));
        assert_eq!(budget.ledger_sum(), 0.0);
    }

    #[test]
    fn measured_rows_join_the_ledger_bit_exactly() {
        use psdacc_sfg::MeasuredSource;
        let mut g = Sfg::new();
        let x = g.add_input();
        let bins: Vec<f64> = (0..96).map(|k| 1e-7 * (k % 7 + 1) as f64).collect();
        let m = g.add_block(Block::Measured(MeasuredSource::new(bins, 2e-4)), &[]).unwrap();
        let sum = g.add_block(Block::Add, &[x, m]).unwrap();
        let f = g.add_block(Block::Fir(Fir::new(vec![0.4, -0.2, 0.1])), &[sum]).unwrap();
        g.mark_output(f);
        let eval = AccuracyEvaluator::new(&g, 128).unwrap();
        for (bits, rounding) in [(8, RoundingMode::Truncate), (14, RoundingMode::RoundNearest)] {
            let plan = WordLengthPlan::uniform(bits, rounding);
            let est = eval.estimate_psd(&plan);
            let budget = eval.evaluate_budget(&plan);
            assert_eq!(budget.power, est.power, "measured fold order matches the evaluate path");
            assert_eq!(budget.mean, est.mean);
            assert_eq!(budget.variance, est.variance);
            assert_eq!(budget.ledger_sum(), est.power, "ledger invariant with a measured row");
            let measured: Vec<&BudgetRow> =
                budget.rows.iter().filter(|r| r.role == BudgetRole::Measured).collect();
            assert_eq!(measured.len(), 1);
            assert_eq!(measured[0].node, m);
            assert_eq!(measured[0].block, "measured");
            assert_eq!(measured[0].frac_bits, None);
            assert!(measured[0].contribution > 0.0, "the floor is attributed, not dropped");
            // Measured rows sit after the auto rows, before any exact rows.
            let auto_count = budget.rows.iter().filter(|r| r.role == BudgetRole::Auto).count();
            assert_eq!(budget.rows[auto_count].role, BudgetRole::Measured);
        }
    }

    #[test]
    fn measured_only_budget_still_folds() {
        use psdacc_sfg::MeasuredSource;
        // No quantization sources at all: the measured row is the whole
        // ledger body and absorbs the (zero) residue itself.
        let mut g = Sfg::new();
        let m =
            g.add_block(Block::Measured(MeasuredSource::new(vec![0.25; 16], 0.5)), &[]).unwrap();
        g.mark_output(m);
        let eval = AccuracyEvaluator::new(&g, 16).unwrap();
        let plan = WordLengthPlan::uniform(8, RoundingMode::RoundNearest);
        let est = eval.estimate_psd(&plan);
        let budget = eval.evaluate_budget(&plan);
        assert_eq!(budget.power, est.power);
        assert_eq!(budget.ledger_sum(), budget.power);
        assert_eq!(budget.rows.len(), 1);
        assert_eq!(budget.rows[0].role, BudgetRole::Measured);
        assert!((budget.power - (0.25 * 16.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn residue_nudge_reaches_exact_targets() {
        // A fold residue case: 0.1 + 0.2 != 0.3 in f64, so the exact
        // residue for target 0.3 after prefix 0.1 is not literally 0.2.
        let r = exact_residue(0.1, 0.3).unwrap();
        assert_eq!(0.1 + r, 0.3);
        assert_eq!(exact_residue(0.0, 1.5), Some(1.5));
        assert_eq!(1.0 + exact_residue(1.0, 1.0 + 1e-16).unwrap(), 1.0 + 1e-16);
        // Negative direction too.
        let r = exact_residue(2.0, 1.0).unwrap();
        assert_eq!(2.0 + r, 1.0);
    }

    #[test]
    fn midpoint_aligned_targets_have_no_single_row_preimage() {
        // Found by the budget proptest: this prefix puts every exact sum
        // `prefix + r` on a round-to-even midpoint, so the odd-mantissa
        // target is unreachable from one row — `exact_residue` must
        // report that instead of oscillating, and `assemble` falls back
        // to shifting the penultimate row.
        let prefix = 1.1827265828634484e-4;
        let target = 4.43793491619678e-4;
        assert_eq!(exact_residue(prefix, target), None);
    }
}
