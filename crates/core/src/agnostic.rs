//! The PSD-agnostic hierarchical baseline (paper Fig. 1b, after refs. 9 and 4 of the paper).
//!
//! Blocks are characterized only by their impulse-response energy
//! `E = sum h^2` and DC gain `D = sum h`; noise state at every wire is just
//! `(mean, variance)`. Crossing a block maps `variance -> E * variance`
//! (implicitly assuming the incoming noise is *white*) and
//! `mean -> D * mean`; adders sum moments (implicitly assuming their inputs
//! are *uncorrelated*). Both assumptions fail after the first
//! frequency-selective block — that is the inaccuracy the paper quantifies
//! in Table II.

use psdacc_sfg::{NodeId, Sfg, SfgError};

use crate::wordlength::NoiseSource;

/// Result of a PSD-agnostic evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgnosticEstimate {
    /// Accumulated mean at the output.
    pub mean: f64,
    /// Accumulated variance at the output.
    pub variance: f64,
}

impl AgnosticEstimate {
    /// Total estimated error power `mean^2 + variance`.
    pub fn power(&self) -> f64 {
        self.mean * self.mean + self.variance
    }
}

/// Evaluates the output noise moments by blind moment propagation.
///
/// The graph must be acyclic at block level (feedback belongs *inside* IIR
/// blocks, as in all paper benchmarks): hierarchical moment methods have no
/// way to characterize an open loop.
///
/// # Errors
///
/// [`SfgError::DelayFreeCycle`] if the block-level graph is cyclic,
/// [`SfgError::Measured`] on graphs with measured sources (a colored
/// estimated spectrum has no `(mean, variance)` summary that survives
/// moment propagation), plus [`SfgError::UnknownNode`] for a bad output
/// id.
pub fn evaluate_agnostic(
    sfg: &Sfg,
    output: NodeId,
    sources: &[NoiseSource],
) -> Result<AgnosticEstimate, SfgError> {
    if output.0 >= sfg.len() {
        return Err(SfgError::UnknownNode { node: output });
    }
    if sfg.has_measured() {
        return Err(SfgError::Measured {
            detail: "moment propagation cannot represent a colored estimated spectrum".to_string(),
        });
    }
    let order = full_topological_order(sfg)?;
    // Per-node accumulated (mean, variance).
    let mut mean = vec![0.0; sfg.len()];
    let mut var = vec![0.0; sfg.len()];
    for &id in &order {
        let node = sfg.node(id);
        // Sum of incoming noise, assuming uncorrelated inputs.
        let (mut m, mut v) =
            node.inputs.iter().fold((0.0, 0.0), |(m, v), p| (m + mean[p.0], v + var[p.0]));
        // Through the block: energy for variance (white-input assumption),
        // DC gain for the mean.
        m *= node.block.dc_gain();
        v *= node.block.energy();
        // The node's own source, if any (IIR sources shaped by 1/A).
        for src in sources.iter().filter(|s| s.node == id) {
            let (e_shape, d_shape) = match &src.internal_feedback {
                None => (1.0, 1.0),
                Some(a) => {
                    let h = psdacc_dsp::iir_impulse_response(&[1.0], a, 1 << 20, 1e-16);
                    (psdacc_dsp::energy_fir(&h), psdacc_dsp::dc_gain_fir(&h))
                }
            };
            m += src.moments.mean * d_shape;
            v += src.moments.variance * e_shape;
        }
        mean[id.0] = m;
        var[id.0] = v;
    }
    Ok(AgnosticEstimate { mean: mean[output.0], variance: var[output.0] })
}

/// Kahn topological order over the *full* edge set.
fn full_topological_order(sfg: &Sfg) -> Result<Vec<NodeId>, SfgError> {
    let n = sfg.len();
    let mut indegree = vec![0usize; n];
    let mut succ = vec![Vec::new(); n];
    for (i, node) in sfg.iter() {
        for &p in &node.inputs {
            succ[p.0].push(i);
            indegree[i.0] += 1;
        }
    }
    let mut queue: Vec<NodeId> = (0..n).filter(|&i| indegree[i] == 0).map(NodeId).collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        order.push(v);
        for &w in &succ[v.0] {
            indegree[w.0] -= 1;
            if indegree[w.0] == 0 {
                queue.push(w);
            }
        }
    }
    if order.len() != n {
        let stuck: Vec<NodeId> = (0..n).filter(|&i| indegree[i] > 0).map(NodeId).collect();
        return Err(SfgError::DelayFreeCycle { nodes: stuck });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psd_method::evaluate_psd_method;
    use crate::wordlength::WordLengthPlan;
    use psdacc_filters::{Fir, LtiSystem};
    use psdacc_fixed::{NoiseMoments, RoundingMode};
    use psdacc_sfg::Block;

    /// On a *single* filter block fed by one white source, agnostic and PSD
    /// methods agree (the paper's Section IV-B equivalence).
    #[test]
    fn agrees_with_psd_method_on_single_block() {
        let fir = Fir::new(vec![0.4, 0.3, -0.2]);
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Fir(fir), &[x]).unwrap();
        g.mark_output(f);
        let plan = WordLengthPlan::uniform(10, RoundingMode::Truncate);
        let sources = plan.noise_sources(&g);
        let ag = evaluate_agnostic(&g, f, &sources).unwrap();
        let psd = evaluate_psd_method(&g, f, &sources, 1024).unwrap();
        assert!(
            (ag.power() - psd.power()).abs() < 1e-9 * ag.power(),
            "{} vs {}",
            ag.power(),
            psd.power()
        );
    }

    /// Two cascaded filters: agnostic treats the first filter's (colored)
    /// output as white at the second block, diverging from the PSD method.
    #[test]
    fn diverges_on_cascade() {
        // Lowpass then highpass: the colored noise from stage 1 is almost
        // entirely rejected by stage 2, which the agnostic method misses.
        let lp = Fir::new(vec![0.25; 4]);
        let hp = Fir::new(vec![0.25, -0.25, 0.25, -0.25]);
        let mut g = Sfg::new();
        let x = g.add_input();
        let a = g.add_block(Block::Fir(lp), &[x]).unwrap();
        let b = g.add_block(Block::Fir(hp), &[a]).unwrap();
        g.mark_output(b);
        // A single source at the input isolates the cascade effect.
        let src =
            NoiseSource { node: x, moments: NoiseMoments::new(0.0, 1.0), internal_feedback: None };
        let ag = evaluate_agnostic(&g, b, std::slice::from_ref(&src)).unwrap();
        let psd = evaluate_psd_method(&g, b, &[src], 1024).unwrap();
        // Agnostic: energy(LP)*energy(HP) = 0.0625. True (PSD): the band
        // rejected by HP was exactly where LP concentrated the noise, so
        // only 0.015625 survives — a 4x overestimate.
        let ratio = ag.power() / psd.power();
        assert!((ag.power() - 0.0625).abs() < 1e-12);
        assert!((ratio - 4.0).abs() < 0.01, "expected ~4x overestimate, got {ratio}");
    }

    #[test]
    fn source_moments_accumulate() {
        let mut g = Sfg::new();
        let x = g.add_input();
        let a = g.add_block(Block::Gain(2.0), &[x]).unwrap();
        g.mark_output(a);
        // Gain 2.0 is a power of two -> only the input source exists under a
        // plan; craft sources manually to check arithmetic.
        let s1 =
            NoiseSource { node: x, moments: NoiseMoments::new(0.1, 1.0), internal_feedback: None };
        let s2 = NoiseSource {
            node: a,
            moments: NoiseMoments::new(-0.05, 0.5),
            internal_feedback: None,
        };
        let est = evaluate_agnostic(&g, a, &[s1, s2]).unwrap();
        // Input source through gain 2: mean 0.2, var 4.0; plus own source.
        assert!((est.mean - (0.2 - 0.05)).abs() < 1e-12);
        assert!((est.variance - 4.5).abs() < 1e-12);
    }

    #[test]
    fn cyclic_graph_rejected() {
        let mut g = Sfg::new();
        let x = g.add_input();
        let add = g.add_block(Block::Add, &[x]).unwrap();
        let d = g.add_block(Block::Delay(1), &[add]).unwrap();
        g.set_inputs(add, &[x, d]).unwrap();
        g.mark_output(add);
        assert!(matches!(evaluate_agnostic(&g, add, &[]), Err(SfgError::DelayFreeCycle { .. })));
    }

    #[test]
    fn iir_source_shaping_energy() {
        use psdacc_filters::Iir;
        let iir = Iir::new(vec![1.0], vec![1.0, -0.5]).unwrap();
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Iir(iir.clone()), &[x]).unwrap();
        g.mark_output(f);
        let mut plan = WordLengthPlan::uniform(8, RoundingMode::RoundNearest);
        plan.quantize_inputs = false;
        let est = evaluate_agnostic(&g, f, &plan.noise_sources(&g)).unwrap();
        let sigma2 = NoiseMoments::continuous(RoundingMode::RoundNearest, 8).variance;
        let expect = sigma2 / (1.0 - 0.25); // energy of (0.5)^n
        assert!((est.variance - expect).abs() < 1e-6 * expect);
        let _ = iir.energy();
    }
}
