//! # psdacc-core
//!
//! The primary contribution of *"Leveraging Power Spectral Density for
//! Scalable System-Level Accuracy Evaluation"* (Barrois, Parashar, Sentieys,
//! DATE 2016), reimplemented as a Rust library: analytical evaluation of the
//! output quantization-noise of fixed-point LTI systems by propagating the
//! **discrete PSD** of every noise source through the signal-flow graph.
//!
//! Three methods share one front-end ([`AccuracyEvaluator`]):
//!
//! * [`psd_method`] — the proposed technique (paper Section III): white PQN
//!   sources sampled on `N_PSD` bins (Eq. 10), shaped per block by
//!   `|H(F)|^2` (Eq. 11), summed at adders (Eq. 12/14) with intra-source
//!   correlation handled exactly via complex source-to-output responses;
//! * [`agnostic`] — the hierarchical PSD-agnostic baseline that carries
//!   only `(mean, variance)` across block boundaries;
//! * [`flat`] — the classical flat method (Eq. 4-6), exact in the time
//!   domain, used both as a baseline and as ground truth for unit tests.
//!
//! The simulation reference lives in `psdacc-sim`; multirate (DWT)
//! propagation rules are in [`propagate`] and are consumed by
//! `psdacc-wavelet`.

pub mod agnostic;
pub mod budget;
pub mod evaluator;
pub mod flat;
pub mod metrics;
pub mod noise_psd;
pub mod propagate;
pub mod psd_method;
pub mod refine;
pub mod report;
pub mod wordlength;

pub use agnostic::{evaluate_agnostic, AgnosticEstimate};
pub use budget::{BudgetRole, BudgetRow, NoiseBudget};
pub use evaluator::AccuracyEvaluator;
pub use flat::{evaluate_flat, FlatEstimate};
pub use metrics::{ed, equivalent_bit_deviation, is_sub_one_bit, sqnr_db};
pub use noise_psd::NoisePsd;
pub use propagate::{downsample_psd, through_magnitude, through_response, upsample_psd};
pub use psd_method::{
    evaluate_psd_method, evaluate_with_multirate, evaluate_with_responses, PsdEstimate,
};
pub use refine::{
    greedy_refinement, greedy_refinement_from, greedy_refinement_observed,
    minimum_uniform_wordlength, minimum_uniform_wordlength_from, RefineStep, RefinementResult,
};
pub use report::{Comparison, Estimate, Method};
pub use wordlength::{NoiseSource, WordLengthPlan};
