//! The classical flat analytical method (paper Eq. 4-6, after Menard et al., paper ref. 8).
//!
//! Every source's *time-domain* path impulse response `h_i` to the output
//! is extracted by probing the reference simulator with a unit impulse
//! injected at the source point; then
//!
//! `E[b_y^2] = sum_i K_i sigma_i^2 + sum_ij L_ij mu_i mu_j`
//!
//! with `K_i = sum_k h_i(k)^2` (Eq. 5) and, for deterministic LTI paths,
//! `L_ij = (sum_k h_i(k)) (sum_l h_j(l))` (Eq. 6), so the double sum
//! collapses to `(sum_i D_i mu_i)^2`.
//!
//! This is the exactness reference for single-rate systems (no `N_PSD`
//! discretization), at the cost the paper describes: path extraction does
//! not decompose hierarchically and is the slowest of the three methods on
//! large systems.

use psdacc_sfg::{NodeId, Sfg, SfgError};
use psdacc_sim::SfgSimulator;

use crate::wordlength::NoiseSource;

/// Result of a flat analytical evaluation.
#[derive(Debug, Clone)]
pub struct FlatEstimate {
    /// Accumulated output mean `sum_i D_i mu_i`.
    pub mean: f64,
    /// Accumulated output variance `sum_i K_i sigma_i^2`.
    pub variance: f64,
    /// Per-source path constants `(node, K_i, D_i)`.
    pub path_constants: Vec<(NodeId, f64, f64)>,
}

impl FlatEstimate {
    /// Total estimated error power.
    pub fn power(&self) -> f64 {
        self.mean * self.mean + self.variance
    }
}

/// Evaluates the output noise power with the flat method.
///
/// `max_len` bounds each probed impulse response; probing stops early once
/// the running tail energy drops below `tol` times the accumulated energy
/// (recursive paths decay geometrically).
///
/// # Errors
///
/// [`SfgError::Multirate`] on multirate graphs — a single impulse probe
/// captures only one decimator phase of a periodically time-varying path,
/// so Eq. 5's `K_i` would be silently phase-biased.
/// [`SfgError::Measured`] on graphs with measured sources — the path
/// constants `K_i`/`D_i` assume white sources, which a colored estimated
/// spectrum is not. Otherwise propagates [`SfgError`] from simulator
/// construction.
pub fn evaluate_flat(
    sfg: &Sfg,
    output: NodeId,
    sources: &[NoiseSource],
    max_len: usize,
    tol: f64,
) -> Result<FlatEstimate, SfgError> {
    if psdacc_sfg::is_multirate(sfg) {
        return Err(SfgError::Multirate {
            detail: "flat path probing is phase-dependent on time-varying graphs".to_string(),
        });
    }
    if sfg.has_measured() {
        return Err(SfgError::Measured {
            detail: "flat path probing has no time-domain model of an estimated spectrum"
                .to_string(),
        });
    }
    let mut sim = SfgSimulator::reference(sfg)?;
    let zero_inputs = vec![0.0; sfg.inputs().len()];
    let mut mean = 0.0;
    let mut variance = 0.0;
    let mut path_constants = Vec::with_capacity(sources.len());
    for src in sources {
        sim.reset();
        sim.inject(src.node, 1.0);
        let probe = probe_response(&mut sim, output, &zero_inputs, max_len, tol);
        // IIR sources are injected inside the recursion: convolve with the
        // 1/A shaping first.
        let h = match &src.internal_feedback {
            None => probe,
            Some(_) => {
                let shape = src.shaping_impulse(max_len, tol);
                psdacc_dsp::convolve(&shape, &probe)
            }
        };
        let k_i: f64 = h.iter().map(|v| v * v).sum();
        let d_i: f64 = h.iter().sum();
        variance += k_i * src.moments.variance;
        mean += d_i * src.moments.mean;
        path_constants.push((src.node, k_i, d_i));
    }
    Ok(FlatEstimate { mean, variance, path_constants })
}

/// Runs the simulator with zero external input until the response decays.
fn probe_response(
    sim: &mut SfgSimulator,
    output: NodeId,
    zero_inputs: &[f64],
    max_len: usize,
    tol: f64,
) -> Vec<f64> {
    let mut h = Vec::new();
    let mut total = 0.0f64;
    let mut tail = 0.0f64;
    let window = 64usize;
    for t in 0..max_len {
        sim.step(zero_inputs);
        let v = sim.value(output);
        h.push(v);
        total += v * v;
        tail += v * v;
        if t >= window {
            let old = h[t - window];
            tail -= old * old;
            if total > 0.0 && tail <= tol * total {
                break;
            }
            if total == 0.0 && t > 2 * window {
                break; // the path never reaches the output
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psd_method::evaluate_psd_method;
    use crate::wordlength::WordLengthPlan;
    use psdacc_filters::{Fir, Iir, LtiSystem};
    use psdacc_fixed::{NoiseMoments, RoundingMode};
    use psdacc_sfg::Block;

    #[test]
    fn fir_path_constants_exact() {
        let fir = Fir::new(vec![0.5, -0.25, 0.125]);
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Fir(fir.clone()), &[x]).unwrap();
        g.mark_output(f);
        let src =
            NoiseSource { node: x, moments: NoiseMoments::new(0.0, 1.0), internal_feedback: None };
        let est = evaluate_flat(&g, f, &[src], 4096, 1e-18).unwrap();
        assert!((est.variance - fir.energy()).abs() < 1e-12);
        let (_, k, d) = est.path_constants[0];
        assert!((k - fir.energy()).abs() < 1e-12);
        assert!((d - fir.dc_gain()).abs() < 1e-12);
    }

    /// The paper's Section IV-B claim: flat and PSD methods give identical
    /// results on elementary filter blocks (up to N_PSD resolution).
    #[test]
    fn flat_equals_psd_method_on_filters() {
        let fir = Fir::new(vec![0.3, 0.3, 0.2, 0.1, 0.05]);
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Fir(fir), &[x]).unwrap();
        g.mark_output(f);
        let plan = WordLengthPlan::uniform(12, RoundingMode::Truncate);
        let sources = plan.noise_sources(&g);
        let flat = evaluate_flat(&g, f, &sources, 4096, 1e-18).unwrap();
        let psd = evaluate_psd_method(&g, f, &sources, 1024).unwrap();
        assert!(
            (flat.power() - psd.power()).abs() < 1e-9 * flat.power(),
            "flat {} vs psd {}",
            flat.power(),
            psd.power()
        );
    }

    #[test]
    fn iir_source_energy_includes_recursion() {
        let iir = Iir::new(vec![1.0], vec![1.0, -0.8]).unwrap();
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Iir(iir), &[x]).unwrap();
        g.mark_output(f);
        let mut plan = WordLengthPlan::uniform(10, RoundingMode::RoundNearest);
        plan.quantize_inputs = false;
        let sources = plan.noise_sources(&g);
        let est = evaluate_flat(&g, f, &sources, 1 << 16, 1e-18).unwrap();
        let sigma2 = NoiseMoments::continuous(RoundingMode::RoundNearest, 10).variance;
        let expect = sigma2 / (1.0 - 0.64); // energy of 0.8^n
        assert!((est.variance - expect).abs() < 1e-4 * expect);
    }

    #[test]
    fn feedback_loop_probe_decays() {
        // Explicit delay-feedback loop: y = x + 0.9 y z^-1.
        let mut g = Sfg::new();
        let x = g.add_input();
        let add = g.add_block(Block::Add, &[x]).unwrap();
        let gain = g.add_block(Block::Gain(0.9), &[add]).unwrap();
        let delay = g.add_block(Block::Delay(1), &[gain]).unwrap();
        g.set_inputs(add, &[x, delay]).unwrap();
        g.mark_output(add);
        let src =
            NoiseSource { node: x, moments: NoiseMoments::new(0.0, 1.0), internal_feedback: None };
        let est = evaluate_flat(&g, add, &[src], 1 << 16, 1e-18).unwrap();
        let expect = 1.0 / (1.0 - 0.81);
        assert!((est.variance - expect).abs() < 1e-4 * expect);
    }

    #[test]
    fn multirate_graphs_are_refused_at_the_entry_point() {
        // The guard must live here, not only in the evaluator wrapper: a
        // direct caller probing a down/up graph would otherwise get a
        // silently phase-biased K_i.
        let mut g = Sfg::new();
        let x = g.add_input();
        let down = g.add_block(Block::Downsample(2), &[x]).unwrap();
        let up = g.add_block(Block::Upsample(2), &[down]).unwrap();
        g.mark_output(up);
        let src =
            NoiseSource { node: x, moments: NoiseMoments::new(0.0, 1.0), internal_feedback: None };
        assert!(matches!(
            evaluate_flat(&g, up, &[src], 256, 1e-12),
            Err(SfgError::Multirate { .. })
        ));
    }

    #[test]
    fn truncation_means_collapse_to_squared_sum() {
        // Two sources with DC gains 1 and 2: power mean term = (mu*1+mu*2)^2.
        let mut g = Sfg::new();
        let x = g.add_input();
        let a = g.add_block(Block::Gain(2.0), &[x]).unwrap();
        g.mark_output(a);
        let mu = -0.01;
        let s1 =
            NoiseSource { node: x, moments: NoiseMoments::new(mu, 0.0), internal_feedback: None };
        let s2 =
            NoiseSource { node: a, moments: NoiseMoments::new(mu, 0.0), internal_feedback: None };
        let est = evaluate_flat(&g, a, &[s1, s2], 256, 1e-18).unwrap();
        let expect = (mu * 2.0 + mu).powi(2);
        assert!((est.power() - expect).abs() < 1e-15);
    }
}
