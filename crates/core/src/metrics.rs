//! Accuracy metrics: the paper's Ed deviation (Eq. 15) and the sub-one-bit
//! criterion.
//!
//! Sign convention note: the paper prints Eq. 15 as
//! `(E[err_sim^2] - E[err_est^2]) / E[err_sim^2]` but then states that
//! one-bit accuracy corresponds to `Ed` in `(-75%, 300%)` — a band that is
//! only consistent with the *opposite* orientation
//! `(E[err_est^2] - E[err_sim^2]) / E[err_sim^2]` (an estimate 4x too large
//! is +300%, 4x too small is -75%). We follow the band, since every numeric
//! claim in the paper is phrased against it.

/// Relative deviation of an estimated error power from the simulated one:
///
/// `Ed = (E[err_est^2] - E[err_sim^2]) / E[err_sim^2]`
///
/// Returned as a fraction (multiply by 100 for the paper's percentages).
/// Positive values overestimate the noise, negative values underestimate it.
///
/// # Examples
///
/// ```
/// use psdacc_core::metrics::ed;
/// assert_eq!(ed(2.0, 1.0), -0.5); // estimate half the simulated power
/// assert_eq!(ed(2.0, 2.0), 0.0);
/// ```
pub fn ed(simulated_power: f64, estimated_power: f64) -> f64 {
    (estimated_power - simulated_power) / simulated_power
}

/// The paper's "less than one bit" accuracy band: an estimate within one
/// fractional bit of the truth has `Ed` in `(-75%, 300%)` (estimated power
/// between 1/4x and 4x the simulated value — one bit of word-length moves
/// the noise power by a factor of 4).
pub fn is_sub_one_bit(ed: f64) -> bool {
    ed > -0.75 && ed < 3.0
}

/// Signal-to-quantization-noise ratio in dB.
pub fn sqnr_db(signal_power: f64, noise_power: f64) -> f64 {
    10.0 * (signal_power / noise_power).log10()
}

/// Equivalent bit deviation of an estimate: how many fractional bits apart
/// the estimated and simulated powers are (`0.5 log2` of the power ratio —
/// one bit of word-length changes the noise power by 4x).
pub fn equivalent_bit_deviation(simulated_power: f64, estimated_power: f64) -> f64 {
    0.5 * (estimated_power / simulated_power).log2().abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ed_signs() {
        // Underestimate -> negative Ed; overestimate -> positive.
        assert!(ed(1.0, 0.5) < 0.0);
        assert!(ed(1.0, 2.0) > 0.0);
    }

    #[test]
    fn sub_one_bit_band_endpoints() {
        // 4x overestimate: Ed = +3 (one bit); 4x underestimate: Ed = -0.75.
        assert_eq!(ed(1.0, 4.0), 3.0);
        assert_eq!(ed(1.0, 0.25), -0.75);
        assert!(is_sub_one_bit(0.0));
        assert!(is_sub_one_bit(-0.74));
        assert!(is_sub_one_bit(2.9));
        assert!(!is_sub_one_bit(-0.76));
        assert!(!is_sub_one_bit(3.1));
    }

    #[test]
    fn bit_deviation() {
        assert_eq!(equivalent_bit_deviation(1.0, 1.0), 0.0);
        assert_eq!(equivalent_bit_deviation(1.0, 4.0), 1.0); // one bit coarser
        assert_eq!(equivalent_bit_deviation(4.0, 1.0), 1.0);
    }

    #[test]
    fn sqnr() {
        assert!((sqnr_db(1.0, 0.001) - 30.0).abs() < 1e-12);
    }
}
