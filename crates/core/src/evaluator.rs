//! The high-level accuracy evaluator: preprocessing cache + the three
//! methods + simulation, with the paper's `tau_pp` / `tau_eval` split.

use std::time::Instant;

use psdacc_sfg::{node_responses, NodeId, NodeResponses, Sfg, SfgError};
use psdacc_sim::{measure_quantization_error, SimulationPlan};

use crate::agnostic::evaluate_agnostic;
use crate::flat::evaluate_flat;
use crate::psd_method::evaluate_with_responses;
use crate::report::{Comparison, Estimate, Method};
use crate::wordlength::WordLengthPlan;

/// Accuracy evaluator for one system (one SFG and one designated output).
///
/// Construction performs the one-time preprocessing (`tau_pp`): solving the
/// graph per frequency bin. Every subsequent word-length configuration is
/// evaluated in O(Ne * N_PSD) (`tau_eval`), which is what makes the method
/// usable inside a word-length optimization loop.
///
/// # Examples
///
/// ```
/// use psdacc_core::{AccuracyEvaluator, WordLengthPlan};
/// use psdacc_fixed::RoundingMode;
/// use psdacc_sfg::{Sfg, Block};
/// use psdacc_filters::Fir;
///
/// let mut g = Sfg::new();
/// let x = g.add_input();
/// let f = g.add_block(Block::Fir(Fir::new(vec![0.5, 0.5])), &[x])?;
/// g.mark_output(f);
/// let eval = AccuracyEvaluator::new(&g, 256)?;
/// let plan = WordLengthPlan::uniform(12, RoundingMode::RoundNearest);
/// let est = eval.estimate_psd(&plan);
/// assert!(est.power > 0.0);
/// # Ok::<(), psdacc_sfg::SfgError>(())
/// ```
#[derive(Debug)]
pub struct AccuracyEvaluator {
    sfg: Sfg,
    output: NodeId,
    responses: NodeResponses,
    preprocess_seconds: f64,
}

impl AccuracyEvaluator {
    /// Builds an evaluator for the first marked output of `sfg`, sampling
    /// PSDs on `npsd` bins.
    ///
    /// # Errors
    ///
    /// [`SfgError::NoOutput`] when the graph has no designated output, plus
    /// any realizability error from the frequency solver.
    pub fn new(sfg: &Sfg, npsd: usize) -> Result<Self, SfgError> {
        let output = *sfg.outputs().first().ok_or(SfgError::NoOutput)?;
        let t0 = Instant::now();
        let responses = node_responses(sfg, output, npsd)?;
        let preprocess_seconds = t0.elapsed().as_secs_f64();
        Ok(AccuracyEvaluator { sfg: sfg.clone(), output, responses, preprocess_seconds })
    }

    /// Rebuilds an evaluator from **already-computed** responses — the warm
    /// path of a persistent preprocessing store. No per-bin graph solve is
    /// performed; `preprocess_seconds` should carry the cost recorded when
    /// the responses were first computed.
    ///
    /// # Errors
    ///
    /// [`SfgError::NoOutput`] when the graph has no designated output;
    /// [`SfgError::ResponseShape`] when `responses` does not cover exactly
    /// the nodes of `sfg`.
    pub fn from_cached(
        sfg: &Sfg,
        responses: NodeResponses,
        preprocess_seconds: f64,
    ) -> Result<Self, SfgError> {
        let output = *sfg.outputs().first().ok_or(SfgError::NoOutput)?;
        if responses.len() != sfg.len() {
            return Err(SfgError::ResponseShape {
                detail: format!(
                    "responses cover {} nodes, graph has {}",
                    responses.len(),
                    sfg.len()
                ),
            });
        }
        Ok(AccuracyEvaluator { sfg: sfg.clone(), output, responses, preprocess_seconds })
    }

    /// The analyzed graph.
    pub fn sfg(&self) -> &Sfg {
        &self.sfg
    }

    /// The designated output node.
    pub fn output(&self) -> NodeId {
        self.output
    }

    /// PSD grid size.
    pub fn npsd(&self) -> usize {
        self.responses.npsd()
    }

    /// Wall-clock seconds spent in preprocessing (`tau_pp`).
    pub fn preprocess_seconds(&self) -> f64 {
        self.preprocess_seconds
    }

    /// Cached source-to-output responses (e.g. for custom propagation).
    pub fn responses(&self) -> &NodeResponses {
        &self.responses
    }

    /// Proposed PSD method (`tau_eval` stage only — reuses the cache).
    pub fn estimate_psd(&self, plan: &WordLengthPlan) -> Estimate {
        let sources = plan.noise_sources(&self.sfg);
        let t0 = Instant::now();
        let est = evaluate_with_responses(&self.responses, &sources);
        let elapsed = t0.elapsed();
        Estimate {
            method: Method::PsdMethod,
            power: est.power(),
            mean: est.psd.mean(),
            variance: est.psd.variance(),
            psd: Some(est.psd),
            elapsed,
        }
    }

    /// PSD-agnostic hierarchical baseline.
    ///
    /// # Errors
    ///
    /// [`SfgError::DelayFreeCycle`] when the block-level graph is cyclic.
    pub fn estimate_agnostic(&self, plan: &WordLengthPlan) -> Result<Estimate, SfgError> {
        let sources = plan.noise_sources(&self.sfg);
        let t0 = Instant::now();
        let est = evaluate_agnostic(&self.sfg, self.output, &sources)?;
        Ok(Estimate {
            method: Method::PsdAgnostic,
            power: est.power(),
            mean: est.mean,
            variance: est.variance,
            psd: None,
            elapsed: t0.elapsed(),
        })
    }

    /// Classical flat method (time-domain path probing).
    ///
    /// # Errors
    ///
    /// Propagates simulator-construction errors.
    pub fn estimate_flat(&self, plan: &WordLengthPlan) -> Result<Estimate, SfgError> {
        let sources = plan.noise_sources(&self.sfg);
        let t0 = Instant::now();
        let est = evaluate_flat(&self.sfg, self.output, &sources, 1 << 16, 1e-16)?;
        Ok(Estimate {
            method: Method::Flat,
            power: est.power(),
            mean: est.mean,
            variance: est.variance,
            psd: None,
            elapsed: t0.elapsed(),
        })
    }

    /// Monte-Carlo simulation reference.
    ///
    /// # Errors
    ///
    /// Propagates simulator-construction errors.
    pub fn simulate(
        &self,
        plan: &WordLengthPlan,
        sim: &SimulationPlan,
    ) -> Result<Estimate, SfgError> {
        let quantizers = plan.quantizers(&self.sfg);
        let t0 = Instant::now();
        let m = measure_quantization_error(&self.sfg, &quantizers, sim)?;
        Ok(Estimate {
            method: Method::Simulation,
            power: m.power,
            mean: m.mean,
            variance: m.variance,
            psd: Some(crate::noise_psd::NoisePsd::from_parts(
                {
                    // Remove the mean mass from the measured DC bin so the
                    // representation matches NoisePsd conventions.
                    let mut bins = m.psd.clone();
                    if let Some(dc) = bins.first_mut() {
                        *dc = (*dc - m.mean * m.mean).max(0.0);
                    }
                    bins
                },
                m.mean,
            )),
            elapsed: t0.elapsed(),
        })
    }

    /// Runs simulation plus all three analytical methods and packages the
    /// comparison.
    ///
    /// # Errors
    ///
    /// Propagates errors from any stage.
    pub fn compare(
        &self,
        plan: &WordLengthPlan,
        sim: &SimulationPlan,
    ) -> Result<Comparison, SfgError> {
        let simulated = self.simulate(plan, sim)?;
        let estimates =
            vec![self.estimate_psd(plan), self.estimate_agnostic(plan)?, self.estimate_flat(plan)?];
        Ok(Comparison { simulated, estimates })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use psdacc_dsp::Window;
    use psdacc_filters::{butterworth, design_fir, BandSpec};
    use psdacc_fixed::RoundingMode;
    use psdacc_sfg::Block;

    fn fir_system() -> Sfg {
        let fir = design_fir(BandSpec::Lowpass { cutoff: 0.2 }, 31, Window::Hamming).unwrap();
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Fir(fir), &[x]).unwrap();
        g.mark_output(f);
        g
    }

    /// End-to-end: the PSD estimate lands within a few percent of the
    /// simulation on a designed FIR filter (Table I row, in miniature).
    #[test]
    fn psd_method_matches_simulation_on_fir() {
        let g = fir_system();
        let eval = AccuracyEvaluator::new(&g, 1024).unwrap();
        let plan = WordLengthPlan::uniform(12, RoundingMode::Truncate);
        let sim = SimulationPlan { samples: 200_000, nfft: 256, ..Default::default() };
        let c = eval.compare(&plan, &sim).unwrap();
        let ed = c.ed_of(Method::PsdMethod).unwrap();
        assert!(ed.abs() < 0.05, "FIR Ed should be tiny, got {ed}");
        // Flat agrees with PSD on an elementary block (Section IV-B).
        let ed_flat = c.ed_of(Method::Flat).unwrap();
        assert!((ed - ed_flat).abs() < 1e-6, "flat and psd must coincide");
    }

    /// End-to-end on an IIR: recursive shaping captured, sub-one-bit.
    #[test]
    fn psd_method_matches_simulation_on_iir() {
        let iir = butterworth(4, BandSpec::Lowpass { cutoff: 0.15 }).unwrap();
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Iir(iir), &[x]).unwrap();
        g.mark_output(f);
        let eval = AccuracyEvaluator::new(&g, 1024).unwrap();
        let plan = WordLengthPlan::uniform(12, RoundingMode::RoundNearest);
        let sim = SimulationPlan { samples: 300_000, nfft: 256, ..Default::default() };
        let c = eval.compare(&plan, &sim).unwrap();
        let ed = c.ed_of(Method::PsdMethod).unwrap();
        assert!(metrics::is_sub_one_bit(ed), "IIR Ed out of band: {ed}");
        assert!(ed.abs() < 0.35, "IIR Ed larger than paper-scale bounds: {ed}");
    }

    #[test]
    fn preprocessing_is_reused() {
        let g = fir_system();
        let eval = AccuracyEvaluator::new(&g, 512).unwrap();
        let e1 = eval.estimate_psd(&WordLengthPlan::uniform(8, RoundingMode::Truncate));
        let e2 = eval.estimate_psd(&WordLengthPlan::uniform(16, RoundingMode::Truncate));
        // 8 bits -> 16 bits: noise power drops by ~2^16.
        let ratio = e1.power / e2.power;
        assert!(
            (ratio.log2() - 16.0).abs() < 0.1,
            "power should scale by 2^(2*8), log2 ratio {}",
            ratio.log2()
        );
    }

    #[test]
    fn from_cached_reproduces_estimates_bit_identically() {
        let g = fir_system();
        let eval = AccuracyEvaluator::new(&g, 256).unwrap();
        let rows = eval.responses().rows().to_vec();
        let rebuilt = AccuracyEvaluator::from_cached(
            &g,
            NodeResponses::from_rows(rows, 256).unwrap(),
            eval.preprocess_seconds(),
        )
        .unwrap();
        let plan = WordLengthPlan::uniform(10, RoundingMode::Truncate);
        assert_eq!(eval.estimate_psd(&plan).power, rebuilt.estimate_psd(&plan).power);
        assert_eq!(rebuilt.preprocess_seconds(), eval.preprocess_seconds());
        assert_eq!(rebuilt.output(), eval.output());
    }

    #[test]
    fn from_cached_rejects_mismatched_shapes() {
        let g = fir_system();
        let eval = AccuracyEvaluator::new(&g, 64).unwrap();
        let mut rows = eval.responses().rows().to_vec();
        rows.pop();
        let short = NodeResponses::from_rows(rows, 64).unwrap();
        assert!(matches!(
            AccuracyEvaluator::from_cached(&g, short, 0.0),
            Err(SfgError::ResponseShape { .. })
        ));
    }

    #[test]
    fn no_output_is_an_error() {
        let mut g = Sfg::new();
        let _ = g.add_input();
        assert!(matches!(AccuracyEvaluator::new(&g, 64), Err(SfgError::NoOutput)));
    }
}
