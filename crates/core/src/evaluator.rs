//! The high-level accuracy evaluator: preprocessing cache + the three
//! methods + simulation, with the paper's `tau_pp` / `tau_eval` split.

use std::time::Instant;

use psdacc_sfg::{preprocess, NodeId, Preprocessed, Sfg, SfgError};
use psdacc_sim::{measure_quantization_error, SimulationPlan};

use crate::agnostic::evaluate_agnostic;
use crate::flat::evaluate_flat;
use crate::psd_method::{evaluate_with_multirate, evaluate_with_responses};
use crate::report::{Comparison, Estimate, Method};
use crate::wordlength::WordLengthPlan;

/// Accuracy evaluator for one system (one SFG and one designated output).
///
/// Construction performs the one-time preprocessing (`tau_pp`): solving the
/// graph per frequency bin. Every subsequent word-length configuration is
/// evaluated in O(Ne * N_PSD) (`tau_eval`), which is what makes the method
/// usable inside a word-length optimization loop.
///
/// # Examples
///
/// ```
/// use psdacc_core::{AccuracyEvaluator, WordLengthPlan};
/// use psdacc_fixed::RoundingMode;
/// use psdacc_sfg::{Sfg, Block};
/// use psdacc_filters::Fir;
///
/// let mut g = Sfg::new();
/// let x = g.add_input();
/// let f = g.add_block(Block::Fir(Fir::new(vec![0.5, 0.5])), &[x])?;
/// g.mark_output(f);
/// let eval = AccuracyEvaluator::new(&g, 256)?;
/// let plan = WordLengthPlan::uniform(12, RoundingMode::RoundNearest);
/// let est = eval.estimate_psd(&plan);
/// assert!(est.power > 0.0);
/// # Ok::<(), psdacc_sfg::SfgError>(())
/// ```
#[derive(Debug)]
pub struct AccuracyEvaluator {
    sfg: Sfg,
    output: NodeId,
    preprocessed: Preprocessed,
    preprocess_seconds: f64,
}

impl AccuracyEvaluator {
    /// Builds an evaluator for the first marked output of `sfg`, sampling
    /// PSDs on `npsd` bins (the input-rate grid; multirate graphs scale
    /// each rate region's grid accordingly).
    ///
    /// # Errors
    ///
    /// [`SfgError::NoOutput`] when the graph has no designated output, plus
    /// any realizability or rate-consistency error from preprocessing.
    pub fn new(sfg: &Sfg, npsd: usize) -> Result<Self, SfgError> {
        let output = *sfg.outputs().first().ok_or(SfgError::NoOutput)?;
        let t0 = Instant::now();
        let preprocessed = preprocess(sfg, output, npsd)?;
        let preprocess_seconds = t0.elapsed().as_secs_f64();
        #[cfg(feature = "obs")]
        if let Some(reg) = psdacc_obs::stage::registry() {
            reg.histogram("core_tau_pp_ns").record(t0.elapsed());
        }
        Ok(AccuracyEvaluator { sfg: sfg.clone(), output, preprocessed, preprocess_seconds })
    }

    /// Rebuilds an evaluator from **already-computed** preprocessing — the
    /// warm path of a persistent store. No solve is performed;
    /// `preprocess_seconds` should carry the cost recorded when the
    /// preprocessing was first computed.
    ///
    /// # Errors
    ///
    /// [`SfgError::NoOutput`] when the graph has no designated output;
    /// [`SfgError::ResponseShape`] when `preprocessed` does not cover
    /// exactly the nodes of `sfg` or its form does not match the graph's
    /// rate structure.
    pub fn from_cached(
        sfg: &Sfg,
        preprocessed: Preprocessed,
        preprocess_seconds: f64,
    ) -> Result<Self, SfgError> {
        let output = *sfg.outputs().first().ok_or(SfgError::NoOutput)?;
        if preprocessed.len() != sfg.len() {
            return Err(SfgError::ResponseShape {
                detail: format!(
                    "preprocessing covers {} nodes, graph has {}",
                    preprocessed.len(),
                    sfg.len()
                ),
            });
        }
        let multirate_graph = psdacc_sfg::is_multirate(sfg);
        let multirate_data = preprocessed.as_multirate().is_some();
        if multirate_graph != multirate_data {
            return Err(SfgError::ResponseShape {
                detail: format!(
                    "graph is {} but the cached preprocessing is {}",
                    if multirate_graph { "multirate" } else { "single-rate" },
                    if multirate_data { "multirate" } else { "single-rate" },
                ),
            });
        }
        Ok(AccuracyEvaluator { sfg: sfg.clone(), output, preprocessed, preprocess_seconds })
    }

    /// The analyzed graph.
    pub fn sfg(&self) -> &Sfg {
        &self.sfg
    }

    /// The designated output node.
    pub fn output(&self) -> NodeId {
        self.output
    }

    /// PSD grid size (input-rate grid).
    pub fn npsd(&self) -> usize {
        self.preprocessed.npsd()
    }

    /// Wall-clock seconds spent in preprocessing (`tau_pp`).
    pub fn preprocess_seconds(&self) -> f64 {
        self.preprocess_seconds
    }

    /// Cached preprocessing (exact responses or multirate kernels).
    pub fn preprocessed(&self) -> &Preprocessed {
        &self.preprocessed
    }

    /// Proposed PSD method (`tau_eval` stage only — reuses the cache).
    ///
    /// Graphs with [`psdacc_sfg::Block::Measured`] sources additionally
    /// accumulate each estimated spectrum, rebinned onto the evaluation
    /// grid and shaped by the node's source-to-output response — a
    /// word-length-independent noise floor under every plan. Measured
    /// contributions are folded *after* the quantization sources in a
    /// fixed order, the same order [`AccuracyEvaluator::evaluate_budget`]
    /// uses, so the two stay bit-identical.
    pub fn estimate_psd(&self, plan: &WordLengthPlan) -> Estimate {
        let sources = plan.noise_sources(&self.sfg);
        let measured = self.sfg.measured_sources();
        let t0 = Instant::now();
        let est = {
            #[cfg(feature = "obs")]
            let _frame = psdacc_obs::profile::frame("tau_eval");
            match &self.preprocessed {
                Preprocessed::SingleRate(responses) => {
                    let mut est = evaluate_with_responses(responses, &sources);
                    for (node, src) in &measured {
                        let c = crate::psd_method::measured_contribution_single_rate(
                            responses, *node, src,
                        );
                        est.per_source.push((*node, c.power()));
                        est.psd.add_assign(&c);
                    }
                    est
                }
                Preprocessed::Multirate(kernels) => {
                    debug_assert!(
                        measured.is_empty(),
                        "multirate preprocessing rejects measured sources"
                    );
                    evaluate_with_multirate(kernels, &sources)
                }
            }
        };
        let elapsed = t0.elapsed();
        #[cfg(feature = "obs")]
        if let Some(reg) = psdacc_obs::stage::registry() {
            reg.histogram("core_tau_eval_ns").record(elapsed);
        }
        Estimate {
            method: Method::PsdMethod,
            power: est.power(),
            mean: est.psd.mean(),
            variance: est.psd.variance(),
            psd: Some(est.psd),
            elapsed,
        }
    }

    /// Per-node noise-budget attribution of the PSD method's power: same
    /// `tau_eval` kernels as [`AccuracyEvaluator::estimate_psd`], but the
    /// per-source contributions are kept as a ledger whose rows fold
    /// bit-exactly to the evaluate-path power (see [`crate::budget`]).
    pub fn evaluate_budget(&self, plan: &WordLengthPlan) -> crate::budget::NoiseBudget {
        let sources = plan.noise_sources(&self.sfg);
        #[cfg(feature = "obs")]
        let _frame = psdacc_obs::profile::frame("budget_eval");
        let (contributions, measured): (Vec<crate::NoisePsd>, Vec<(NodeId, crate::NoisePsd)>) =
            match &self.preprocessed {
                Preprocessed::SingleRate(responses) => (
                    sources
                        .iter()
                        .map(|s| crate::psd_method::contribution_single_rate(responses, s))
                        .collect(),
                    self.sfg
                        .measured_sources()
                        .iter()
                        .map(|(node, src)| {
                            (
                                *node,
                                crate::psd_method::measured_contribution_single_rate(
                                    responses, *node, src,
                                ),
                            )
                        })
                        .collect(),
                ),
                Preprocessed::Multirate(kernels) => (
                    sources
                        .iter()
                        .map(|s| crate::psd_method::contribution_multirate(kernels, s))
                        .collect(),
                    Vec::new(),
                ),
            };
        crate::budget::assemble(&self.sfg, plan, &sources, &contributions, &measured)
    }

    /// PSD-agnostic hierarchical baseline.
    ///
    /// # Errors
    ///
    /// [`SfgError::DelayFreeCycle`] when the block-level graph is cyclic.
    pub fn estimate_agnostic(&self, plan: &WordLengthPlan) -> Result<Estimate, SfgError> {
        let sources = plan.noise_sources(&self.sfg);
        let t0 = Instant::now();
        let est = evaluate_agnostic(&self.sfg, self.output, &sources)?;
        Ok(Estimate {
            method: Method::PsdAgnostic,
            power: est.power(),
            mean: est.mean,
            variance: est.variance,
            psd: None,
            elapsed: t0.elapsed(),
        })
    }

    /// Classical flat method (time-domain path probing).
    ///
    /// # Errors
    ///
    /// [`SfgError::Multirate`] on multirate graphs — a single impulse probe
    /// only captures one decimator phase of a periodically time-varying
    /// path, so Eq. 5's `K_i` is undefined (the guard lives in
    /// [`evaluate_flat`]). Otherwise propagates simulator-construction
    /// errors.
    pub fn estimate_flat(&self, plan: &WordLengthPlan) -> Result<Estimate, SfgError> {
        let sources = plan.noise_sources(&self.sfg);
        let t0 = Instant::now();
        let est = evaluate_flat(&self.sfg, self.output, &sources, 1 << 16, 1e-16)?;
        Ok(Estimate {
            method: Method::Flat,
            power: est.power(),
            mean: est.mean,
            variance: est.variance,
            psd: None,
            elapsed: t0.elapsed(),
        })
    }

    /// Monte-Carlo simulation reference.
    ///
    /// # Errors
    ///
    /// [`SfgError::Measured`] on graphs with measured sources — an
    /// estimated spectrum has no time-domain realization to simulate.
    /// Otherwise propagates simulator-construction errors.
    pub fn simulate(
        &self,
        plan: &WordLengthPlan,
        sim: &SimulationPlan,
    ) -> Result<Estimate, SfgError> {
        if self.sfg.has_measured() {
            return Err(SfgError::Measured {
                detail: "bit-true simulation has no time-domain realization of an estimated \
                         spectrum"
                    .to_string(),
            });
        }
        let quantizers = plan.quantizers(&self.sfg);
        let t0 = Instant::now();
        let m = measure_quantization_error(&self.sfg, &quantizers, sim)?;
        Ok(Estimate {
            method: Method::Simulation,
            power: m.power,
            mean: m.mean,
            variance: m.variance,
            psd: Some(crate::noise_psd::NoisePsd::from_parts(
                {
                    // Remove the mean mass from the measured DC bin so the
                    // representation matches NoisePsd conventions.
                    let mut bins = m.psd.clone();
                    if let Some(dc) = bins.first_mut() {
                        *dc = (*dc - m.mean * m.mean).max(0.0);
                    }
                    bins
                },
                m.mean,
            )),
            elapsed: t0.elapsed(),
        })
    }

    /// Runs simulation plus all three analytical methods and packages the
    /// comparison.
    ///
    /// # Errors
    ///
    /// Propagates errors from any stage.
    pub fn compare(
        &self,
        plan: &WordLengthPlan,
        sim: &SimulationPlan,
    ) -> Result<Comparison, SfgError> {
        let simulated = self.simulate(plan, sim)?;
        let estimates =
            vec![self.estimate_psd(plan), self.estimate_agnostic(plan)?, self.estimate_flat(plan)?];
        Ok(Comparison { simulated, estimates })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use psdacc_dsp::Window;
    use psdacc_filters::{butterworth, design_fir, BandSpec, Fir};
    use psdacc_fixed::RoundingMode;
    use psdacc_sfg::Block;

    fn fir_system() -> Sfg {
        let fir = design_fir(BandSpec::Lowpass { cutoff: 0.2 }, 31, Window::Hamming).unwrap();
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Fir(fir), &[x]).unwrap();
        g.mark_output(f);
        g
    }

    /// End-to-end: the PSD estimate lands within a few percent of the
    /// simulation on a designed FIR filter (Table I row, in miniature).
    #[test]
    fn psd_method_matches_simulation_on_fir() {
        let g = fir_system();
        let eval = AccuracyEvaluator::new(&g, 1024).unwrap();
        let plan = WordLengthPlan::uniform(12, RoundingMode::Truncate);
        let sim = SimulationPlan { samples: 200_000, nfft: 256, ..Default::default() };
        let c = eval.compare(&plan, &sim).unwrap();
        let ed = c.ed_of(Method::PsdMethod).unwrap();
        assert!(ed.abs() < 0.05, "FIR Ed should be tiny, got {ed}");
        // Flat agrees with PSD on an elementary block (Section IV-B).
        let ed_flat = c.ed_of(Method::Flat).unwrap();
        assert!((ed - ed_flat).abs() < 1e-6, "flat and psd must coincide");
    }

    /// End-to-end on an IIR: recursive shaping captured, sub-one-bit.
    #[test]
    fn psd_method_matches_simulation_on_iir() {
        let iir = butterworth(4, BandSpec::Lowpass { cutoff: 0.15 }).unwrap();
        let mut g = Sfg::new();
        let x = g.add_input();
        let f = g.add_block(Block::Iir(iir), &[x]).unwrap();
        g.mark_output(f);
        let eval = AccuracyEvaluator::new(&g, 1024).unwrap();
        let plan = WordLengthPlan::uniform(12, RoundingMode::RoundNearest);
        let sim = SimulationPlan { samples: 300_000, nfft: 256, ..Default::default() };
        let c = eval.compare(&plan, &sim).unwrap();
        let ed = c.ed_of(Method::PsdMethod).unwrap();
        assert!(metrics::is_sub_one_bit(ed), "IIR Ed out of band: {ed}");
        assert!(ed.abs() < 0.35, "IIR Ed larger than paper-scale bounds: {ed}");
    }

    #[test]
    fn preprocessing_is_reused() {
        let g = fir_system();
        let eval = AccuracyEvaluator::new(&g, 512).unwrap();
        let e1 = eval.estimate_psd(&WordLengthPlan::uniform(8, RoundingMode::Truncate));
        let e2 = eval.estimate_psd(&WordLengthPlan::uniform(16, RoundingMode::Truncate));
        // 8 bits -> 16 bits: noise power drops by ~2^16.
        let ratio = e1.power / e2.power;
        assert!(
            (ratio.log2() - 16.0).abs() < 0.1,
            "power should scale by 2^(2*8), log2 ratio {}",
            ratio.log2()
        );
    }

    #[test]
    fn from_cached_reproduces_estimates_bit_identically() {
        use psdacc_sfg::NodeResponses;
        let g = fir_system();
        let eval = AccuracyEvaluator::new(&g, 256).unwrap();
        let rows = eval.preprocessed().as_single_rate().unwrap().rows().to_vec();
        let rebuilt = AccuracyEvaluator::from_cached(
            &g,
            Preprocessed::SingleRate(NodeResponses::from_rows(rows, 256).unwrap()),
            eval.preprocess_seconds(),
        )
        .unwrap();
        let plan = WordLengthPlan::uniform(10, RoundingMode::Truncate);
        assert_eq!(eval.estimate_psd(&plan).power, rebuilt.estimate_psd(&plan).power);
        assert_eq!(rebuilt.preprocess_seconds(), eval.preprocess_seconds());
        assert_eq!(rebuilt.output(), eval.output());
    }

    #[test]
    fn from_cached_rejects_mismatched_shapes() {
        use psdacc_sfg::NodeResponses;
        let g = fir_system();
        let eval = AccuracyEvaluator::new(&g, 64).unwrap();
        let mut rows = eval.preprocessed().as_single_rate().unwrap().rows().to_vec();
        rows.pop();
        let short = NodeResponses::from_rows(rows, 64).unwrap();
        assert!(matches!(
            AccuracyEvaluator::from_cached(&g, Preprocessed::SingleRate(short), 0.0),
            Err(SfgError::ResponseShape { .. })
        ));
    }

    #[test]
    fn from_cached_rejects_wrong_preprocessing_form() {
        use psdacc_sfg::Block;
        // Multirate kernels attached to a single-rate graph (and vice
        // versa) must be refused even when the node counts line up.
        let g = fir_system();
        let mut m = Sfg::new();
        let x = m.add_input();
        let d = m.add_block(Block::Downsample(2), &[x]).unwrap();
        m.mark_output(d);
        let multi = AccuracyEvaluator::new(&m, 32).unwrap();
        let kernels = multi.preprocessed().clone();
        assert!(matches!(
            AccuracyEvaluator::from_cached(&g, kernels, 0.0),
            Err(SfgError::ResponseShape { .. })
        ));
        let single = AccuracyEvaluator::new(&g, 32).unwrap().preprocessed().clone();
        assert!(matches!(
            AccuracyEvaluator::from_cached(&m, single, 0.0),
            Err(SfgError::ResponseShape { .. })
        ));
    }

    /// End-to-end multirate check at the evaluator level: a decimated
    /// two-channel branch pair evaluated analytically vs the bit-true
    /// multirate simulator.
    #[test]
    fn multirate_psd_estimate_matches_simulation() {
        use psdacc_sfg::Block;
        // Orthonormal Haar bank: irrational taps keep the PQN source model
        // valid (integer/half taps would quantize to the grid noiselessly).
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let mut g = Sfg::new();
        let x = g.add_input();
        let lp = g.add_block(Block::Fir(Fir::new(vec![s, s])), &[x]).unwrap();
        let hp = g.add_block(Block::Fir(Fir::new(vec![s, -s])), &[x]).unwrap();
        let dl = g.add_block(Block::Downsample(2), &[lp]).unwrap();
        let dh = g.add_block(Block::Downsample(2), &[hp]).unwrap();
        let ul = g.add_block(Block::Upsample(2), &[dl]).unwrap();
        let uh = g.add_block(Block::Upsample(2), &[dh]).unwrap();
        let gl = g.add_block(Block::Fir(Fir::new(vec![s, s])), &[ul]).unwrap();
        let gh = g.add_block(Block::Fir(Fir::new(vec![-s, s])), &[uh]).unwrap();
        let sum = g.add_block(Block::Add, &[gl, gh]).unwrap();
        g.mark_output(sum);
        let eval = AccuracyEvaluator::new(&g, 128).unwrap();
        let plan = WordLengthPlan::uniform(10, RoundingMode::RoundNearest);
        let est = eval.estimate_psd(&plan);
        let sim = SimulationPlan { samples: 400_000, nfft: 128, ..Default::default() };
        let measured = eval.simulate(&plan, &sim).unwrap();
        let ed = (est.power - measured.power) / measured.power;
        assert!(ed.abs() < 0.1, "multirate Ed {ed} (est {}, meas {})", est.power, measured.power);
        // The flat method must refuse rather than silently probe one phase.
        assert!(matches!(eval.estimate_flat(&plan), Err(SfgError::Multirate { .. })));
    }

    #[test]
    fn no_output_is_an_error() {
        let mut g = Sfg::new();
        let _ = g.add_input();
        assert!(matches!(AccuracyEvaluator::new(&g, 64), Err(SfgError::NoOutput)));
    }

    /// A graph mixing a measured source with quantization noise: input and
    /// measured branch summed into an FIR.
    fn measured_system(npsd_src: usize) -> (Sfg, psdacc_sfg::NodeId) {
        use psdacc_sfg::MeasuredSource;
        // Colored spectrum: a ramp of bin masses plus a nonzero mean.
        let bins: Vec<f64> = (0..npsd_src).map(|k| 1e-6 * (k + 1) as f64).collect();
        let src = MeasuredSource::new(bins, 3e-4);
        let mut g = Sfg::new();
        let x = g.add_input();
        let m = g.add_block(Block::Measured(src), &[]).unwrap();
        let sum = g.add_block(Block::Add, &[x, m]).unwrap();
        let f = g.add_block(Block::Fir(Fir::new(vec![0.4, -0.2, 0.1])), &[sum]).unwrap();
        g.mark_output(f);
        (g, m)
    }

    /// With every quantizer exempted, the estimate is exactly the measured
    /// spectrum propagated through the node's source-to-output response —
    /// bit-identical to the analytic `through_response` computation.
    #[test]
    fn measured_contribution_is_the_propagated_spectrum() {
        use psdacc_sfg::node_responses;
        let npsd = 128;
        let (g, m) = measured_system(npsd);
        let eval = AccuracyEvaluator::new(&g, npsd).unwrap();
        let plan = WordLengthPlan::uniform(10, RoundingMode::RoundNearest)
            .with_exact_nodes((0..g.len()).map(psdacc_sfg::NodeId));
        let est = eval.estimate_psd(&plan);
        let out = *g.outputs().first().unwrap();
        let responses = node_responses(&g, out, npsd).unwrap();
        let (node, src) = &g.measured_sources()[0];
        assert_eq!(*node, m);
        let expect = crate::propagate::through_response(
            &crate::NoisePsd::from_parts(src.bins_at(npsd), src.mean),
            responses.of(m),
        );
        let psd = est.psd.unwrap();
        assert_eq!(psd.bins(), expect.bins(), "bins are the analytic propagation, bit-exact");
        assert_eq!(psd.mean(), expect.mean());
        assert_eq!(est.power, expect.power());
        assert!(est.power > 0.0, "measured floor survives an all-exact plan");
    }

    /// The measured floor is word-length independent: it bounds the
    /// estimate from below for every plan.
    #[test]
    fn measured_floor_is_wordlength_independent() {
        let (g, _) = measured_system(64);
        let eval = AccuracyEvaluator::new(&g, 64).unwrap();
        let floor = eval
            .estimate_psd(
                &WordLengthPlan::uniform(8, RoundingMode::RoundNearest)
                    .with_exact_nodes((0..g.len()).map(psdacc_sfg::NodeId)),
            )
            .power;
        let mut prev = f64::INFINITY;
        for bits in [6, 10, 14, 18, 22] {
            // Round-to-nearest keeps the quantization means at zero, so
            // the quantization part strictly adds on top of the floor.
            let p =
                eval.estimate_psd(&WordLengthPlan::uniform(bits, RoundingMode::RoundNearest)).power;
            assert!(p >= floor, "quantization only adds on top of the floor");
            assert!(p < prev, "more bits still reduce the total");
            prev = p;
        }
        assert!(prev < floor * 1.001, "at 22 bits the floor dominates");
    }

    /// Flat, agnostic, and simulation refuse measured graphs instead of
    /// silently mis-modeling the colored spectrum.
    #[test]
    fn non_psd_methods_refuse_measured_graphs() {
        let (g, _) = measured_system(64);
        let eval = AccuracyEvaluator::new(&g, 64).unwrap();
        let plan = WordLengthPlan::uniform(10, RoundingMode::RoundNearest);
        assert!(matches!(eval.estimate_flat(&plan), Err(SfgError::Measured { .. })));
        assert!(matches!(eval.estimate_agnostic(&plan), Err(SfgError::Measured { .. })));
        let sim = SimulationPlan { samples: 1000, nfft: 64, ..Default::default() };
        assert!(matches!(eval.simulate(&plan, &sim), Err(SfgError::Measured { .. })));
        assert!(matches!(eval.compare(&plan, &sim), Err(SfgError::Measured { .. })));
    }
}
