//! Word-length plans: where quantizers sit and which noise sources they
//! create.
//!
//! The rule mirrors realizable hardware and keeps the analytical model and
//! the bit-true simulation describing the *same* machine:
//!
//! * the external input is quantized to `d` fractional bits (continuous-
//!   amplitude source),
//! * every multiplicative block (gain with a non-power-of-two coefficient,
//!   FIR, IIR) re-quantizes its output — products carry more fractional bits
//!   than the format holds, so each creates a fresh PQN source,
//! * adders and delays are exact at a common format and create no noise,
//! * IIR quantization happens *inside* the recursion (direct form I), so its
//!   source is shaped by `1/A(z)` before reaching the block output.

use std::collections::{HashMap, HashSet};

use psdacc_fft::Complex;
use psdacc_fixed::{NoiseMoments, Quantizer, RoundingMode};
use psdacc_sfg::{Block, NodeId, Sfg};

/// A quantization-noise source attached to a node output.
#[derive(Debug, Clone)]
pub struct NoiseSource {
    /// The node whose output carries the source.
    pub node: NodeId,
    /// PQN moments of the injected white noise.
    pub moments: NoiseMoments,
    /// For IIR blocks: the recursion denominator `a` coefficients; the
    /// source passes through `1/A(z)` before reaching the node output.
    pub internal_feedback: Option<Vec<f64>>,
}

impl NoiseSource {
    /// Samples the internal shaping `1/A(z)` on an `n`-point grid (all-ones
    /// when the source has no feedback shaping).
    pub fn shaping(&self, n: usize) -> Vec<Complex> {
        match &self.internal_feedback {
            None => vec![Complex::ONE; n],
            Some(a) => psdacc_dsp::iir_frequency_response(&[1.0], a, n),
        }
    }

    /// Impulse response of the internal shaping (delta when none).
    pub fn shaping_impulse(&self, max_len: usize, tol: f64) -> Vec<f64> {
        match &self.internal_feedback {
            None => vec![1.0],
            Some(a) => psdacc_dsp::iir_impulse_response(&[1.0], a, max_len, tol),
        }
    }
}

/// Assignment of fractional word-lengths to an SFG.
#[derive(Debug, Clone)]
pub struct WordLengthPlan {
    /// Default fractional bits for every quantized signal.
    pub frac_bits: i32,
    /// Rounding mode of all quantizers.
    pub rounding: RoundingMode,
    /// Per-node overrides of `frac_bits`.
    pub overrides: HashMap<NodeId, i32>,
    /// Whether the external inputs are quantized (the paper's benchmarks
    /// quantize them).
    pub quantize_inputs: bool,
    /// Nodes exempted from quantization entirely (a `GraphSpec` node with
    /// role `exact`): they never carry a quantizer and inject no noise,
    /// regardless of block kind. Empty for the builtin scenarios, so the
    /// historical uniform-plan behavior is unchanged.
    pub exact_nodes: HashSet<NodeId>,
}

impl WordLengthPlan {
    /// Uniform plan: every quantization point uses `frac_bits` bits (the
    /// setting of the paper's experiments, which sweep a single `d`).
    pub fn uniform(frac_bits: i32, rounding: RoundingMode) -> Self {
        WordLengthPlan {
            frac_bits,
            rounding,
            overrides: HashMap::new(),
            quantize_inputs: true,
            exact_nodes: HashSet::new(),
        }
    }

    /// Overrides the word-length of one node (builder style).
    pub fn with_override(mut self, node: NodeId, frac_bits: i32) -> Self {
        self.overrides.insert(node, frac_bits);
        self
    }

    /// Marks nodes as exact — no quantizer, no noise source — regardless
    /// of block kind (builder style). This is how `GraphSpec` role
    /// declarations reach both the analytical methods and the bit-true
    /// simulation, which share [`WordLengthPlan::quantized_nodes`].
    pub fn with_exact_nodes(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.exact_nodes.extend(nodes);
        self
    }

    /// Effective fractional bits at a node.
    pub fn frac_bits_of(&self, node: NodeId) -> i32 {
        self.overrides.get(&node).copied().unwrap_or(self.frac_bits)
    }

    /// `true` if the block requantizes its output (creates noise).
    fn is_noisy_block(block: &Block) -> bool {
        match block {
            Block::Gain(g) => {
                // Powers of two (incl. sign flips) are exact shifts.
                let a = g.abs();
                !(a > 0.0 && a.log2().fract().abs() < 1e-12)
            }
            Block::Fir(_) | Block::Iir(_) => true,
            // Rate changers move (or zero-stuff) samples without arithmetic:
            // no requantization, no noise source. Measured sources inject
            // their estimated spectrum directly (handled by the evaluator),
            // not through a quantizer.
            Block::Input
            | Block::Delay(_)
            | Block::Add
            | Block::Downsample(_)
            | Block::Upsample(_)
            | Block::Measured(_) => false,
        }
    }

    /// The nodes that carry quantizers under this plan.
    pub fn quantized_nodes(&self, sfg: &Sfg) -> Vec<NodeId> {
        sfg.iter()
            .filter(|(id, node)| {
                !self.exact_nodes.contains(id)
                    && match node.block {
                        Block::Input => self.quantize_inputs && sfg.inputs().contains(id),
                        ref b => Self::is_noisy_block(b),
                    }
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// The nodes that **would** carry quantizers but are exempted by an
    /// `exact` role — the zero-contribution rows of a noise budget. A
    /// node outside `exact_nodes`, or one that is noiseless regardless
    /// (adder, delay, power-of-two gain), never appears here.
    pub fn exempted_nodes(&self, sfg: &Sfg) -> Vec<NodeId> {
        sfg.iter()
            .filter(|(id, node)| {
                self.exact_nodes.contains(id)
                    && match node.block {
                        Block::Input => self.quantize_inputs && sfg.inputs().contains(id),
                        ref b => Self::is_noisy_block(b),
                    }
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Quantizer vector for the simulation engine (indexed by node).
    pub fn quantizers(&self, sfg: &Sfg) -> Vec<Option<Quantizer>> {
        let mut out = vec![None; sfg.len()];
        for id in self.quantized_nodes(sfg) {
            out[id.0] = Some(Quantizer::new(self.frac_bits_of(id), self.rounding));
        }
        out
    }

    /// Noise sources for the analytical methods (PQN continuous model: the
    /// quantized values are products/continuous-amplitude signals).
    pub fn noise_sources(&self, sfg: &Sfg) -> Vec<NoiseSource> {
        self.quantized_nodes(sfg)
            .into_iter()
            .map(|id| {
                let moments = NoiseMoments::continuous(self.rounding, self.frac_bits_of(id));
                let internal_feedback = match &sfg.node(id).block {
                    Block::Iir(iir) => Some(iir.a().to_vec()),
                    _ => None,
                };
                NoiseSource { node: id, moments, internal_feedback }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdacc_filters::{Fir, Iir};

    fn sample_graph() -> (Sfg, NodeId, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Sfg::new();
        let x = g.add_input();
        let gain = g.add_block(Block::Gain(0.3), &[x]).unwrap();
        let shift = g.add_block(Block::Gain(0.5), &[gain]).unwrap(); // exact shift
        let fir = g.add_block(Block::Fir(Fir::new(vec![0.5, 0.5])), &[shift]).unwrap();
        let iir =
            g.add_block(Block::Iir(Iir::new(vec![1.0], vec![1.0, -0.5]).unwrap()), &[fir]).unwrap();
        g.mark_output(iir);
        (g, x, gain, shift, fir, iir)
    }

    #[test]
    fn quantized_nodes_follow_the_rule() {
        let (g, x, gain, shift, fir, iir) = sample_graph();
        let plan = WordLengthPlan::uniform(12, RoundingMode::Truncate);
        let nodes = plan.quantized_nodes(&g);
        assert!(nodes.contains(&x));
        assert!(nodes.contains(&gain));
        assert!(!nodes.contains(&shift), "power-of-two gain is exact");
        assert!(nodes.contains(&fir));
        assert!(nodes.contains(&iir));
    }

    #[test]
    fn input_quantization_can_be_disabled() {
        let (g, x, ..) = sample_graph();
        let mut plan = WordLengthPlan::uniform(12, RoundingMode::Truncate);
        plan.quantize_inputs = false;
        assert!(!plan.quantized_nodes(&g).contains(&x));
    }

    #[test]
    fn exact_nodes_are_exempt_everywhere() {
        let (g, x, gain, _, fir, iir) = sample_graph();
        let plan =
            WordLengthPlan::uniform(12, RoundingMode::Truncate).with_exact_nodes([gain, fir]);
        let nodes = plan.quantized_nodes(&g);
        assert!(nodes.contains(&x) && nodes.contains(&iir));
        assert!(!nodes.contains(&gain) && !nodes.contains(&fir), "exact roles exempt");
        // Quantizers and noise sources share the exemption.
        let q = plan.quantizers(&g);
        assert!(q[gain.0].is_none() && q[fir.0].is_none());
        assert!(plan.noise_sources(&g).iter().all(|s| s.node != gain && s.node != fir));
        // Inputs can be exempted too.
        let plan = WordLengthPlan::uniform(12, RoundingMode::Truncate).with_exact_nodes([x]);
        assert!(!plan.quantized_nodes(&g).contains(&x));
    }

    #[test]
    fn overrides_apply() {
        let (g, x, ..) = sample_graph();
        let plan = WordLengthPlan::uniform(12, RoundingMode::Truncate).with_override(x, 20);
        assert_eq!(plan.frac_bits_of(x), 20);
        let q = plan.quantizers(&g);
        assert_eq!(q[x.0].unwrap().frac_bits(), 20);
    }

    #[test]
    fn iir_source_is_shaped() {
        let (g, .., iir) = sample_graph();
        let plan = WordLengthPlan::uniform(8, RoundingMode::RoundNearest);
        let sources = plan.noise_sources(&g);
        let iir_src = sources.iter().find(|s| s.node == iir).unwrap();
        assert!(iir_src.internal_feedback.is_some());
        let shaping = iir_src.shaping(8);
        // 1/(1 - 0.5 z^-1) at DC = 2.
        assert!((shaping[0].re - 2.0).abs() < 1e-12);
        let ir = iir_src.shaping_impulse(64, 1e-12);
        assert!((ir[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fir_source_is_unshaped() {
        let (g, .., fir, _) = sample_graph();
        let plan = WordLengthPlan::uniform(8, RoundingMode::RoundNearest);
        let sources = plan.noise_sources(&g);
        let src = sources.iter().find(|s| s.node == fir).unwrap();
        assert!(src.internal_feedback.is_none());
        assert_eq!(src.shaping_impulse(16, 0.0), vec![1.0]);
    }

    #[test]
    fn source_moments_match_pqn() {
        let (g, ..) = sample_graph();
        let plan = WordLengthPlan::uniform(10, RoundingMode::Truncate);
        for s in plan.noise_sources(&g) {
            let expect = NoiseMoments::continuous(RoundingMode::Truncate, 10);
            assert_eq!(s.moments, expect);
        }
    }
}
