//! Vendored, dependency-free subset of the `rand_chacha` crate API: a real
//! ChaCha8 keystream generator behind the [`ChaCha8Rng`] name, seedable via
//! `rand_chacha::rand_core::SeedableRng::seed_from_u64`.
//!
//! The keystream is a faithful ChaCha8 implementation (RFC 8439 quarter
//! rounds, 8 double-rounds); the `seed_from_u64` key expansion uses
//! SplitMix64 like the vendored `rand` crate, so streams differ from
//! upstream `rand_chacha` but are deterministic per seed.

pub use rand::RngCore;

pub mod rand_core {
    //! Re-exports mirroring the upstream `rand_core` facade.
    pub use rand::{RngCore, SeedableRng};
}

const CHACHA_ROUNDS: usize = 8;

/// ChaCha8 block function: 8 rounds over the 16-word state.
fn chacha_block(state: &[u32; 16], out: &mut [u32; 16]) {
    #[inline]
    fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }
    let mut x = *state;
    for _ in 0..CHACHA_ROUNDS / 2 {
        // Column round.
        quarter(&mut x, 0, 4, 8, 12);
        quarter(&mut x, 1, 5, 9, 13);
        quarter(&mut x, 2, 6, 10, 14);
        quarter(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut x, 0, 5, 10, 15);
        quarter(&mut x, 1, 6, 11, 12);
        quarter(&mut x, 2, 7, 8, 13);
        quarter(&mut x, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = x[i].wrapping_add(state[i]);
    }
}

/// Deterministic ChaCha8 random generator (subset of upstream `ChaCha8Rng`).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    cursor: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut out = [0u32; 16];
        chacha_block(&self.state, &mut out);
        self.buffer = out;
        self.cursor = 0;
        // 64-bit block counter in words 12..14.
        let ctr = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = ctr as u32;
        self.state[13] = (ctr >> 32) as u32;
    }
}

impl rand_core::SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = rand::splitmix64(&mut sm);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        // Counter (12..14) and nonce (14..16) start at zero.
        ChaCha8Rng { state, buffer: [0; 16], cursor: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.cursor + 2 > 16 {
            self.refill();
        }
        let lo = self.buffer[self.cursor] as u64;
        let hi = self.buffer[self.cursor + 1] as u64;
        self.cursor += 2;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.buffer[self.cursor];
        self.cursor += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::rand_core::SeedableRng;
    use super::ChaCha8Rng;
    use rand::{Rng, RngCore};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut c = ChaCha8Rng::seed_from_u64(6);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn rng_trait_methods_work() {
        let mut r = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..1000 {
            let x = r.gen_range(0.0..std::f64::consts::TAU);
            assert!((0.0..std::f64::consts::TAU).contains(&x));
        }
    }

    /// First block against the raw block function: the counter advances.
    #[test]
    fn stream_does_not_repeat_across_blocks() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }
}
