//! Vendored, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the small slice of `rand` it actually uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over primitive ranges, and [`rngs::StdRng`].
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 — not the
//! same stream as upstream `rand`'s ChaCha-based `StdRng`, but statistically
//! solid and fully deterministic per seed, which is all the workspace relies
//! on (no test pins exact draws).

use std::ops::Range;

/// Low-level uniform word source. Everything else derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; the workspace only uses [`SeedableRng::seed_from_u64`].
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open `Range`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `range` (`low` inclusive, `high` exclusive).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self;
}

/// Maps 64 random bits to `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<f64>) -> f64 {
        let u = unit_f64(rng.next_u64());
        let v = range.start + (range.end - range.start) * u;
        // Floating rounding can land exactly on `end` (e.g. when the span is
        // far below one ulp of the endpoints); clamp to the largest value
        // strictly inside the half-open range.
        if v >= range.end {
            range.end.next_down().max(range.start)
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<f32>) -> f32 {
        f64::sample_range(rng, &((range.start as f64)..(range.end as f64))) as f32
    }
}

/// Lemire-style unbiased bounded draw on `[0, bound)` for `bound > 0`.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling on the top of the range keeps the draw unbiased.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                let off = bounded_u64(rng, span);
                ((range.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

/// The user-facing randomness interface (subset of upstream `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range, `rand` 0.8 style.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, &range)
    }

    /// Uniform draw from `[0, 1)` (f64) — upstream's `gen::<f64>()` shape is
    /// not reproduced; this covers the common explicit case.
    fn gen_unit(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_unit() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// SplitMix64: seed expander (public for reuse by `rand_chacha`).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Raw 256-bit state constructor (states must not be all-zero; the
        /// seeding path guarantees that).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng::from_state(s)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn float_range_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x), "{x}");
        }
    }

    #[test]
    fn int_range_covers_and_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let x = r.gen_range(-2i32..4);
            assert!((-2..4).contains(&x));
            seen[(x + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range appear");
    }

    /// A span far below one ulp of the endpoints must still honor the
    /// half-open contract (the naive `end - span*EPSILON` clamp rounds
    /// back to `end`).
    #[test]
    fn tiny_span_far_from_zero_stays_half_open() {
        let mut r = StdRng::seed_from_u64(3);
        let (start, end) = (1e10, 1e10 + 1e-5);
        for _ in 0..10_000 {
            let x = r.gen_range(start..end);
            assert!(x >= start && x < end, "{x:?} escaped [{start}, {end})");
        }
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut r = StdRng::seed_from_u64(1234);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
