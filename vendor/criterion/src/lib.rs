//! Vendored, dependency-free subset of the `criterion` benchmarking crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! slice of criterion the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — short warmup, then timed batches
//! with the median-of-batches wall time reported to stdout. There is no
//! statistical analysis, HTML report, or baseline comparison; the point is
//! that `cargo bench` runs and prints comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark time budget after warmup.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Warmup budget.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Identifier combining a function name and a parameter, printed as
/// `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f` in repeated batches and records the median cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup doubles the batch size until one batch takes >= 1ms (or the
        // warmup budget runs out), so per-batch timer overhead is negligible.
        let warm_start = Instant::now();
        let mut iters_per_batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || warm_start.elapsed() >= WARMUP_BUDGET {
                break;
            }
            iters_per_batch = iters_per_batch.saturating_mul(2);
        }
        // Measurement: batches until the budget is spent.
        let mut samples = Vec::new();
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET || samples.is_empty() {
            let t0 = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / iters_per_batch as f64);
            if samples.len() >= 500 {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { ns_per_iter: f64::NAN };
    f(&mut b);
    println!("{label:<48} {:>12}/iter", human_time(b.ns_per_iter));
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes the statistical sample count; the shim's time-boxed
    /// loop ignores it (kept for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time knob (ignored, API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; output streams as benches run).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup { name, _parent: self }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, &mut f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; there is
            // nothing to test here, so only bare invocations measure.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: f64::NAN };
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.ns_per_iter.is_finite() && b.ns_per_iter > 0.0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("fft", 1024).id, "fft/1024");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn human_time_scales() {
        assert!(human_time(12.0).ends_with("ns"));
        assert!(human_time(12_000.0).ends_with("µs"));
        assert!(human_time(12_000_000.0).ends_with("ms"));
    }
}
