//! Vendored, dependency-free subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! exactly the surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] with [`Strategy::prop_map`],
//! * range strategies over primitive numerics, tuple strategies,
//!   [`collection::vec`], `bool::ANY`, and [`Just`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: cases are drawn from a deterministic
//! per-test RNG (override the stream with the `PROPTEST_SEED` env var) and
//! there is **no shrinking** — on failure the offending inputs are printed
//! in full instead.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng as _, SampleUniform};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values (upstream's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (rejection with a retry cap).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 10000 consecutive draws", self.whence);
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E), (A, B, C, D, E, F),);

pub mod bool {
    //! Boolean strategies (`prop::bool::ANY`).

    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A strategy drawing `true` / `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use std::ops::Range;

    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Length specification accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { start: r.start, end: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { start: n, end: n + 1 }
        }
    }

    /// Strategy generating `Vec`s of `element` draws.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.start..self.size.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic per-test RNG construction.

    pub use super::ProptestConfig;
    use super::TestRng;
    use rand::SeedableRng;

    /// FNV-1a over the fully qualified test name, mixed with the optional
    /// `PROPTEST_SEED` env override, so every test gets its own stable
    /// stream.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let user: u64 =
            std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0);
        TestRng::seed_from_u64(h ^ user)
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::test_runner::rng_for;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    pub mod prop {
        //! The `prop::` module path used inside `proptest!` bodies.
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Property-test entry point. Supports the upstream surface used here:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in -1.0f64..1.0, v in prop::collection::vec(0u8..8, 1..12)) {
///         prop_assert!(x.abs() <= 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = <$crate::ProptestConfig as ::std::default::Default>::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                    $(&$arg),+
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let ::std::result::Result::Err(payload) = outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed with inputs:{}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        inputs
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest harness (no shrinking, so
/// this simply panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.5f64..2.5, n in 1usize..10) {
            prop_assert!((-2.5..2.5).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u8..8, 3..9)) {
            prop_assert!(v.len() >= 3 && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 8));
        }

        #[test]
        fn tuples_and_map_compose(
            v in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..5)
                .prop_map(|v| v.into_iter().map(|(a, b)| a + b).collect::<Vec<f64>>()),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(v.iter().all(|s| s.abs() < 2.0));
            prop_assert!(u8::from(flag) <= 1);
        }
    }

    #[test]
    fn deterministic_streams() {
        use crate::Strategy;
        let mut a = rng_for("some::test");
        let mut b = rng_for("some::test");
        for _ in 0..32 {
            assert_eq!((0u32..1000).generate(&mut a), (0u32..1000).generate(&mut b));
        }
    }
}
